"""Integration tests for overload protection, pinned to seeds.

Three contracts, end to end through the CLI:

* **Off means off** -- with overload protection disabled (the default),
  runs are byte-identical to goldens captured before the subsystem
  existed, on both the serial and the sharded engine.
* **Engines agree** -- a shedding run produces byte-identical JSON on
  the serial engine and with ``--shards 2``.
* **Bounds bind** -- under a saturating overload fault, every node's
  peak queue depth respects ``--queue-bound``, tuples are shed and
  charged honestly, and the same fault with no bound grows the queue
  far past it.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import Algorithm

DATA = Path(__file__).parent / "data"

DFTT_ARGS = [
    "--algorithm", "DFTT", "--nodes", "5", "--tuples", "1500",
    "--window", "128", "--kappa", "16", "--seed", "19", "--rate", "300",
    "--reliable",
]
SKCH_ARGS = [
    "--algorithm", "SKCH", "--nodes", "4", "--tuples", "1200",
    "--window", "128", "--kappa", "16", "--seed", "7", "--rate", "300",
]
OVERLOAD_ARGS = [
    "--algorithm", "DFTT", "--nodes", "5", "--tuples", "1500",
    "--window", "128", "--kappa", "16", "--seed", "19", "--rate", "300",
    "--reliable", "--fault-plan", "overload@t=1,d=3,node=1,factor=12",
]


def run_json(capsys, argv):
    assert main(argv + ["--json"]) == 0
    return capsys.readouterr().out


class TestOffMeansOff:
    """Disabled overload protection must not move a single byte."""

    @pytest.mark.parametrize(
        "args, golden",
        [
            (DFTT_ARGS, "pre_overload_dftt_seed19.json"),
            (SKCH_ARGS, "pre_overload_skch_seed7.json"),
        ],
        ids=["dftt-seed19", "skch-seed7"],
    )
    def test_serial_matches_pre_overload_golden(self, capsys, args, golden):
        expected = (DATA / golden).read_text()
        assert run_json(capsys, args) == expected

    def test_sharded_matches_pre_overload_golden(self, capsys):
        expected = (DATA / "pre_overload_dftt_seed19.json").read_text()
        assert run_json(capsys, DFTT_ARGS + ["--shards", "2"]) == expected

    def test_disabled_run_has_no_overload_keys(self, capsys):
        payload = json.loads(run_json(capsys, SKCH_ARGS))
        assert "overload" not in payload


class TestEnginesAgree:
    def test_shedding_run_is_engine_independent(self, capsys):
        argv = OVERLOAD_ARGS + ["--queue-bound", "8"]
        serial = run_json(capsys, argv)
        sharded = run_json(capsys, argv + ["--shards", "2"])
        assert serial == sharded
        payload = json.loads(serial)
        assert payload["overload"]["shed_tuples"] > 0

    def test_repeated_runs_are_deterministic(self, capsys):
        argv = OVERLOAD_ARGS + ["--queue-bound", "8"]
        assert run_json(capsys, argv) == run_json(capsys, argv)

    def test_cached_overload_sweep_is_byte_identical(self, tmp_path):
        """One shedding chaos cell: cold run == warm (cached) run."""
        from repro.experiments.chaos import (
            ChaosLevel,
            rows_to_json,
            run,
        )
        from repro.overload import OverloadSettings
        from repro.parallel import RunCache

        kwargs = dict(
            scale="smoke",
            algorithms=(Algorithm.DFTT,),
            grid=(ChaosLevel.parse("surge@over=8"),),
            num_nodes=4,
            overload=OverloadSettings.for_queue_bound(16),
            cache=RunCache(str(tmp_path)),
        )
        cold = run(**kwargs)
        warm = run(**kwargs)
        assert rows_to_json(cold) == rows_to_json(warm)
        assert cold[0].shed_tuples > 0


class TestBoundsBind:
    def test_queue_bound_holds_under_saturation(self, capsys):
        payload = json.loads(
            run_json(capsys, OVERLOAD_ARGS + ["--queue-bound", "8", "--verbose"])
        )
        depths = {
            node: diag["max_queue_depth"]
            for node, diag in payload["node_diagnostics"].items()
        }
        assert depths, "verbose run must report per-node diagnostics"
        assert all(depth <= 8 for depth in depths.values()), depths
        overload = payload["overload"]
        assert overload["shed_tuples"] > 0
        assert overload["mode_transitions"] > 0
        assert overload["shedding_seconds"] > 0

    def test_unbounded_queue_grows_past_the_bound(self, capsys):
        payload = json.loads(run_json(capsys, OVERLOAD_ARGS + ["--verbose"]))
        worst = max(
            diag["max_queue_depth"]
            for diag in payload["node_diagnostics"].values()
        )
        assert worst > 8

    def test_shed_tuples_are_charged_against_the_oracle(self, capsys):
        """Shedding degrades epsilon but keeps it bounded: the oracle
        still counts pairs the shed tuples would have completed."""
        bounded = json.loads(
            run_json(capsys, OVERLOAD_ARGS + ["--queue-bound", "8"])
        )
        unbounded = json.loads(run_json(capsys, OVERLOAD_ARGS))
        assert bounded["metrics"]["truth_pairs"] > 0
        assert bounded["metrics"]["epsilon"] >= unbounded["metrics"]["epsilon"]
        assert bounded["metrics"]["epsilon"] < 1.0
