"""Shared fixtures."""

import os

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_parallel_env(tmp_path_factory):
    """Keep the suite deterministic and side-effect free.

    The run-result cache defaults to ``.repro-cache/`` in the working
    directory; tests must never read a developer's warm cache or leave
    entries behind, so the default is redirected to a session temp dir.
    ``REPRO_JOBS`` and ``REPRO_CACHE_SALT`` are cleared for the same
    reason: an exported knob must not change what the suite asserts.
    """
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_CACHE_DIR", "REPRO_JOBS", "REPRO_CACHE_SALT")
    }
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    os.environ.pop("REPRO_JOBS", None)
    os.environ.pop("REPRO_CACHE_SALT", None)
    yield
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


@pytest.fixture
def rng():
    """A deterministic generator; tests that need their own seed make one."""
    return np.random.default_rng(1234)
