"""Shared fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic generator; tests that need their own seed make one."""
    return np.random.default_rng(1234)
