"""Unit tests for the telemetry exporters and the Chrome-trace validator."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    TelemetryHub,
    build_manifest,
    chrome_trace_events,
    export_all,
    export_chrome_trace,
    export_csv,
    export_jsonl,
    export_prometheus,
    validate_chrome_trace,
)
from repro.telemetry.exporters import EXPORT_FILENAMES


def populated_hub():
    """A small deterministic hub exercising every record shape."""
    hub = TelemetryHub(clock=lambda: 0.0)
    hub.emit("node.service", category="node", node=0, time=1.0, dur_s=0.25,
             kind="tuple")
    hub.emit("net.send", category="net", node=1, time=1.5, dst=0, kind="tuple")
    hub.emit("sched.compaction", category="scheduler", time=2.0, dropped=3)
    hub.registry.counter("repro_demo_total", node=0).inc(5)
    hub.registry.gauge("repro_demo_depth", node=1).set(2)
    hub.registry.histogram("repro_demo_seconds", edges=(0.1, 1.0)).observe(0.5)
    hub.sample_tick(1.0)
    hub.sample_tick(2.0)
    return hub


class TestJsonl:
    def test_manifest_first_then_events(self, tmp_path):
        hub = populated_hub()
        path = export_jsonl(hub, tmp_path / "events.jsonl", manifest={"seed": 7})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"type": "manifest", "manifest": {"seed": 7}}
        assert [line["type"] for line in lines[1:]] == ["event"] * 3
        assert lines[1]["name"] == "node.service"
        assert lines[1]["dur_s"] == 0.25
        assert lines[1]["attrs"] == {"kind": "tuple"}
        assert lines[3]["attrs"] == {"dropped": 3}
        assert "node" not in lines[3]

    def test_no_manifest_line_when_absent(self, tmp_path):
        path = export_jsonl(populated_hub(), tmp_path / "events.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "event"


class TestChromeTrace:
    def test_record_shapes(self):
        records = chrome_trace_events(populated_hub())
        by_phase = {}
        for record in records:
            by_phase.setdefault(record["ph"], []).append(record)
        # process_name + run track + one named node track per seen node.
        assert len(by_phase["M"]) == 4
        (span,) = by_phase["X"]
        assert span["name"] == "node.service"
        assert span["ts"] == pytest.approx(1.0e6)
        assert span["dur"] == pytest.approx(0.25e6)
        assert span["tid"] == 0
        instants = by_phase["i"]
        assert all(record["s"] == "t" for record in instants)
        # The schedulers' compaction event lands on the global track.
        assert instants[-1]["tid"] == -1

    def test_export_validates_and_carries_manifest(self, tmp_path):
        path = export_chrome_trace(
            populated_hub(), tmp_path / "trace.json", manifest={"seed": 7}
        )
        document = json.loads(path.read_text())
        assert document["otherData"] == {"seed": 7}
        counts = validate_chrome_trace(document)
        assert counts == {"M": 4, "X": 1, "i": 2}


class TestValidateChromeTrace:
    def _document(self, **overrides):
        record = {"ph": "i", "name": "e", "pid": 0, "tid": 0, "ts": 1.0, "s": "t"}
        record.update(overrides)
        return {"traceEvents": [record]}

    def test_rejects_non_object_document(self):
        with pytest.raises(ConfigurationError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ConfigurationError):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_bad_phase(self):
        with pytest.raises(ConfigurationError, match="invalid phase"):
            validate_chrome_trace(self._document(ph="Z"))

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            validate_chrome_trace(self._document(name=""))

    def test_rejects_non_integer_tid(self):
        with pytest.raises(ConfigurationError, match="tid"):
            validate_chrome_trace(self._document(tid="zero"))

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ConfigurationError, match="ts"):
            validate_chrome_trace(self._document(ts=-1.0))

    def test_rejects_span_without_duration(self):
        with pytest.raises(ConfigurationError, match="dur"):
            validate_chrome_trace(self._document(ph="X"))

    def test_rejects_instant_without_scope(self):
        record = self._document()
        del record["traceEvents"][0]["s"]
        with pytest.raises(ConfigurationError, match="scope"):
            validate_chrome_trace(record)


class TestPrometheus:
    def test_text_format(self, tmp_path):
        path = export_prometheus(populated_hub(), tmp_path / "metrics.prom")
        text = path.read_text()
        assert "# TYPE repro_demo_total counter" in text
        assert 'repro_demo_total{node="0"} 5' in text
        assert "# TYPE repro_demo_depth gauge" in text
        assert "# TYPE repro_demo_seconds histogram" in text
        # Cumulative buckets plus the +Inf catch-all, sum, and count.
        assert 'repro_demo_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_demo_seconds_bucket{le="1"} 1' in text
        assert 'repro_demo_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_demo_seconds_sum 0.5" in text
        assert "repro_demo_seconds_count 1" in text

    def test_profiler_section_is_optional(self, tmp_path):
        class FakeProfiler:
            def snapshot(self):
                return {"dft.extend": {"wall_seconds": 0.125, "calls": 2}}

        path = export_prometheus(
            populated_hub(), tmp_path / "metrics.prom", profiler=FakeProfiler()
        )
        text = path.read_text()
        assert 'repro_kernel_wall_seconds{kernel="dft.extend"} 0.125' in text


class TestCsv:
    def test_rows(self, tmp_path):
        path = export_csv(populated_hub(), tmp_path / "timeseries.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "time_s,metric,labels,value"
        assert "1.0,repro_demo_total,node=0,5" in lines
        assert "2.0,repro_demo_depth,node=1,2" in lines


class TestExportAll:
    def test_writes_every_format(self, tmp_path):
        paths = export_all(
            populated_hub(), tmp_path / "out", manifest={"seed": 7}
        )
        assert set(paths) == set(EXPORT_FILENAMES)
        for kind, filename in EXPORT_FILENAMES.items():
            assert paths[kind] == tmp_path / "out" / filename
            assert paths[kind].is_file()

    def test_manifest_file_skipped_without_manifest(self, tmp_path):
        paths = export_all(populated_hub(), tmp_path / "out")
        assert "manifest" not in paths

    def test_exports_are_byte_identical_across_builds(self, tmp_path):
        first = export_all(populated_hub(), tmp_path / "a", manifest={"s": 1})
        second = export_all(populated_hub(), tmp_path / "b", manifest={"s": 1})
        for kind in first:
            assert first[kind].read_bytes() == second[kind].read_bytes(), kind


class TestManifest:
    def test_duck_typed_config(self):
        class FakeConfig:
            seed = 13

            def as_dict(self):
                return {"num_nodes": 3}

        manifest = build_manifest(FakeConfig())
        assert manifest["seed"] == 13
        assert manifest["config"] == {"num_nodes": 3}
        assert manifest["kernel_mode"] in ("fast", "naive")
        assert manifest["telemetry"] == {"enabled": False}

    def test_kernel_mode_tracks_env(self, monkeypatch):
        from repro.telemetry.manifest import kernel_mode

        monkeypatch.delenv("REPRO_NAIVE_KERNELS", raising=False)
        assert kernel_mode() == "fast"
        monkeypatch.setenv("REPRO_NAIVE_KERNELS", "1")
        assert kernel_mode() == "naive"
