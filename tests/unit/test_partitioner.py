"""Unit tests for geographic-skew partitioning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.partitioner import GeographicPartitioner, PartitionerConfig


def _partitioner(num_nodes=4, domain=1000, skew=0.85, spread=0.35, seed=3):
    return GeographicPartitioner(
        PartitionerConfig(num_nodes=num_nodes, domain=domain, skew=skew, spread=spread),
        rng=np.random.default_rng(seed),
    )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        PartitionerConfig(num_nodes=0, domain=10).validate()
    with pytest.raises(ConfigurationError):
        PartitionerConfig(num_nodes=10, domain=5).validate()
    with pytest.raises(ConfigurationError):
        PartitionerConfig(num_nodes=2, domain=10, skew=1.5).validate()
    with pytest.raises(ConfigurationError):
        PartitionerConfig(num_nodes=2, domain=10, spread=1.0).validate()


def test_placement_matrix_rows_are_distributions():
    partitioner = _partitioner()
    matrix = partitioner.placement_matrix
    assert matrix.shape == (4, 4)
    assert np.allclose(matrix.sum(axis=1), 1.0)
    assert (matrix >= 0).all()


def test_home_node_partitions_domain_contiguously():
    partitioner = _partitioner(num_nodes=4, domain=1000)
    assert partitioner.home_node(1) == 0
    assert partitioner.home_node(250) == 0
    assert partitioner.home_node(251) == 1
    assert partitioner.home_node(1000) == 3


def test_home_node_rejects_out_of_domain():
    partitioner = _partitioner()
    with pytest.raises(ConfigurationError):
        partitioner.home_node(0)
    with pytest.raises(ConfigurationError):
        partitioner.home_node(1001)


def test_high_skew_concentrates_on_home_node():
    partitioner = _partitioner(skew=1.0, spread=0.05)
    keys = [10] * 2000  # homed at node 0
    nodes = partitioner.assign(keys)
    assert np.mean(nodes == 0) > 0.9


def test_zero_skew_is_uniform_placement():
    partitioner = _partitioner(skew=0.0)
    matrix = partitioner.placement_matrix
    assert np.allclose(matrix, 1.0 / 4)


def test_assign_matches_per_key_distribution():
    partitioner = _partitioner(seed=8)
    keys = np.full(5000, 600)  # home node 2 of 4
    nodes = partitioner.assign(keys)
    expected = partitioner.placement_matrix[2]
    observed = np.bincount(nodes, minlength=4) / len(nodes)
    assert np.abs(observed - expected).max() < 0.03


def test_assign_empty_input():
    partitioner = _partitioner()
    assert partitioner.assign([]).size == 0


def test_assign_rejects_out_of_domain_keys():
    partitioner = _partitioner()
    with pytest.raises(ConfigurationError):
        partitioner.assign([0, 5])


def test_route_pairs_keys_with_nodes():
    partitioner = _partitioner()
    routed = list(partitioner.route(iter([1, 500, 999])))
    assert [key for key, _ in routed] == [1, 500, 999]
    assert all(0 <= node < 4 for _, node in routed)


def test_neighbor_affinity_decays_with_distance():
    partitioner = _partitioner(num_nodes=8, spread=0.3)
    row = partitioner.placement_matrix[0]
    assert row[0] > row[1] > row[2]
    # Ring distance: node 7 is adjacent to node 0.
    assert row[7] == pytest.approx(row[1])
