"""Unit tests for the per-kernel profiling module."""

import json

from repro.profiling import (
    KernelProfiler,
    KernelTimer,
    Stopwatch,
    profile_call,
    profiler_if,
)


def test_timer_accumulates_calls_and_items():
    timer = KernelTimer("k")
    timer.add(0.5, 0.4, items=10)
    timer.add(0.5, 0.4, items=5)
    assert timer.calls == 2
    assert timer.items == 15
    assert timer.wall_seconds == 1.0
    assert timer.items_per_second == 15.0


def test_timer_zero_wall_time_has_zero_throughput():
    assert KernelTimer("k").items_per_second == 0.0


def test_section_times_and_counts():
    profiler = KernelProfiler()
    with profiler.section("work", items=3):
        sum(range(1000))
    with profiler.section("work", items=2):
        pass
    snap = profiler.snapshot()["work"]
    assert snap["calls"] == 2.0
    assert snap["items"] == 5.0
    assert snap["wall_seconds"] >= 0.0


def test_section_records_on_exception():
    profiler = KernelProfiler()
    try:
        with profiler.section("boom"):
            raise ValueError("x")
    except ValueError:
        pass
    assert profiler.snapshot()["boom"]["calls"] == 1.0


def test_snapshot_is_json_serializable_and_sorted():
    profiler = KernelProfiler()
    profiler.record("b", wall=0.1, cpu=0.1)
    profiler.record("a", wall=0.2, cpu=0.2, items=4)
    snap = profiler.snapshot()
    assert list(snap) == ["a", "b"]
    json.dumps(snap)


def test_merge_folds_timers():
    first = KernelProfiler()
    second = KernelProfiler()
    first.record("k", wall=1.0, cpu=1.0, items=2)
    second.record("k", wall=2.0, cpu=2.0, items=3)
    second.record("other", wall=0.5, cpu=0.5)
    first.merge(second)
    snap = first.snapshot()
    assert snap["k"]["wall_seconds"] == 3.0
    assert snap["k"]["items"] == 5.0
    assert "other" in snap


def test_format_lists_every_kernel():
    profiler = KernelProfiler()
    profiler.record("alpha", wall=0.1, cpu=0.1)
    profiler.record("beta", wall=0.2, cpu=0.2)
    text = profiler.format()
    assert "alpha" in text and "beta" in text and "items/s" in text


def test_stopwatch_measures_interval():
    with Stopwatch() as watch:
        sum(range(10000))
    assert watch.wall_seconds > 0.0
    assert watch.cpu_seconds >= 0.0


def test_profile_call_returns_result_and_report():
    result, report = profile_call(lambda: sum(range(100)), top=5)
    assert result == 4950
    assert "cumulative" in report or "function calls" in report


def test_profiler_if():
    assert profiler_if(False) is None
    assert isinstance(profiler_if(True), KernelProfiler)
