"""Unit tests for system-assembly helpers."""

import itertools

import numpy as np
import pytest

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.system import DistributedJoinSystem, build_key_stream
from repro.net.message import MessageKind


class TestBuildKeyStream:
    @pytest.mark.parametrize(
        "kind",
        [k for k in WorkloadKind if k is not WorkloadKind.REPLAY],
    )
    def test_streams_stay_in_domain(self, kind):
        workload = WorkloadConfig(kind=kind, domain=256)
        stream = build_key_stream(workload, np.random.default_rng(1))
        keys = list(itertools.islice(stream, 500))
        assert min(keys) >= 1
        assert max(keys) <= 256

    def test_deterministic_per_rng_seed(self):
        workload = WorkloadConfig(kind=WorkloadKind.ZIPF, domain=256)
        first = list(
            itertools.islice(build_key_stream(workload, np.random.default_rng(5)), 100)
        )
        second = list(
            itertools.islice(build_key_stream(workload, np.random.default_rng(5)), 100)
        )
        assert first == second

    def test_financial_stream_is_autocorrelated(self):
        workload = WorkloadConfig(kind=WorkloadKind.FINANCIAL, domain=4096)
        stream = build_key_stream(workload, np.random.default_rng(2))
        keys = np.array(list(itertools.islice(stream, 1000)), dtype=float)
        centered = keys - keys.mean()
        if centered.std() > 0:
            lag1 = np.corrcoef(centered[:-1], centered[1:])[0, 1]
            assert lag1 > 0.5


class TestQueryDissemination:
    def _system(self):
        return DistributedJoinSystem(
            SystemConfig(
                num_nodes=4,
                window_size=32,
                policy=PolicyConfig(algorithm=Algorithm.BASE),
                workload=WorkloadConfig(total_tuples=50, domain=64, arrival_rate=100.0),
                seed=3,
            )
        )

    def test_control_messages_reach_all_peers(self):
        system = self._system()
        system.disseminate_query()
        assert system.network.stats.messages(MessageKind.CONTROL) == 3

    def test_schedule_workload_disseminates_once(self):
        system = self._system()
        system.schedule_workload()
        assert system.network.stats.messages(MessageKind.CONTROL) == 3

    def test_control_traffic_not_in_data_plane(self):
        system = self._system()
        result = system.run()
        assert result.messages_by_kind.get("control", 0) == 3
        assert result.data_messages == result.messages_by_kind.get(
            "tuple", 0
        ) + result.messages_by_kind.get("summary", 0)


class TestArrivalSchedule:
    def test_arrival_span_positive_and_rate_consistent(self):
        config = SystemConfig(
            num_nodes=3,
            window_size=32,
            policy=PolicyConfig(algorithm=Algorithm.BASE),
            workload=WorkloadConfig(total_tuples=2000, domain=64, arrival_rate=500.0),
            seed=7,
        )
        system = DistributedJoinSystem(config)
        system.schedule_workload()
        # 2000 arrivals at 500/s: span concentrates near 4 s.
        assert 3.0 < system._arrival_span < 5.5

    def test_streams_are_roughly_balanced(self):
        config = SystemConfig(
            num_nodes=3,
            window_size=64,
            policy=PolicyConfig(algorithm=Algorithm.BASE),
            workload=WorkloadConfig(total_tuples=2000, domain=128, arrival_rate=400.0),
            seed=11,
        )
        system = DistributedJoinSystem(config)
        result = system.run()
        from repro.streams.tuples import StreamId

        r_pop = system.oracle.window_population(StreamId.R)
        s_pop = system.oracle.window_population(StreamId.S)
        # Windows full on both sides at run end (3 nodes x 64 capacity).
        assert r_pop + s_pop == 2 * 3 * 64 or abs(r_pop - s_pop) < 100
