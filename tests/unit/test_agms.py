"""Unit tests for AGMS sketches."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import SummaryError
from repro.sketches.agms import AgmsSketch, SketchShape


def exact_join_size(left: Counter, right: Counter) -> int:
    return sum(count * right[key] for key, count in left.items())


class TestSketchShape:
    def test_validation(self):
        with pytest.raises(SummaryError):
            SketchShape(s0=0, s1=1)
        with pytest.raises(SummaryError):
            SketchShape.from_total(0)

    def test_from_total_respects_ratio(self):
        shape = SketchShape.from_total(500, ratio=5)
        assert shape.s0 >= shape.s1
        assert shape.total <= 500
        assert shape.s1 == 10 and shape.s0 == 50

    def test_from_total_small(self):
        shape = SketchShape.from_total(3)
        assert shape.s0 >= 1 and shape.s1 >= 1


class TestAgmsSketch:
    def _pair(self, total=500, seed=0):
        shape = SketchShape.from_total(total)
        left = AgmsSketch(shape, rng=np.random.default_rng(seed))
        right = left.spawn_compatible()
        return left, right

    def test_empty_sketch_estimates_zero(self):
        left, right = self._pair()
        assert left.join_size_estimate(right) == 0.0
        assert left.self_join_size_estimate() == 0.0

    def test_join_size_estimate_accuracy(self):
        rng = np.random.default_rng(1)
        left_sketch, right_sketch = self._pair(total=2000, seed=2)
        left_data = Counter(int(k) for k in rng.integers(1, 50, size=400))
        right_data = Counter(int(k) for k in rng.integers(1, 50, size=400))
        for key, count in left_data.items():
            left_sketch.update(key, count)
        for key, count in right_data.items():
            right_sketch.update(key, count)
        exact = exact_join_size(left_data, right_data)
        estimate = left_sketch.join_size_estimate(right_sketch)
        assert abs(estimate - exact) / exact < 0.35

    def test_self_join_estimates_second_moment(self):
        rng = np.random.default_rng(3)
        sketch, _ = self._pair(total=2000, seed=4)
        data = Counter(int(k) for k in rng.integers(1, 30, size=500))
        for key, count in data.items():
            sketch.update(key, count)
        exact_f2 = sum(c * c for c in data.values())
        estimate = sketch.self_join_size_estimate()
        assert abs(estimate - exact_f2) / exact_f2 < 0.35

    def test_disjoint_domains_estimate_near_zero(self):
        left, right = self._pair(total=2000, seed=5)
        for key in range(1, 101):
            left.update(key, 1)
        for key in range(1000, 1100):
            right.update(key, 1)
        estimate = left.join_size_estimate(right)
        assert abs(estimate) < 60  # noise around zero, far below |window|=100... overlap would be >= 100

    def test_deletion_cancels_insertion(self):
        sketch, _ = self._pair(seed=6)
        baseline = sketch.counters().copy()
        sketch.update(77, +1)
        sketch.update(77, -1)
        assert np.array_equal(sketch.counters(), baseline)

    def test_zero_delta_is_noop(self):
        sketch, _ = self._pair(seed=7)
        sketch.update(5, 0)
        assert sketch.updates == 0

    def test_incompatible_shapes_rejected(self):
        a = AgmsSketch(SketchShape(s0=5, s1=1), rng=np.random.default_rng(8))
        b = AgmsSketch(SketchShape(s0=10, s1=2), rng=np.random.default_rng(9))
        with pytest.raises(SummaryError):
            a.join_size_estimate(b)

    def test_different_hash_banks_rejected(self):
        shape = SketchShape(s0=5, s1=1)
        a = AgmsSketch(shape, rng=np.random.default_rng(10))
        b = AgmsSketch(shape, rng=np.random.default_rng(11))
        with pytest.raises(SummaryError):
            a.join_size_estimate(b)

    def test_hash_row_count_must_match_shape(self):
        from repro.sketches.hashing import FourWiseHashFamily

        with pytest.raises(SummaryError):
            AgmsSketch(SketchShape(s0=5, s1=2), hashes=FourWiseHashFamily(3))

    def test_serialized_entries(self):
        sketch, _ = self._pair(total=500)
        assert sketch.serialized_entries() == sketch.shape.total
