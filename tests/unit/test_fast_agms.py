"""Unit tests for Fast-AGMS sketches."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import SummaryError
from repro.sketches.fast_agms import FastAgmsSketch, FastSketchShape


def _pair(total=2000, seed=0):
    shape = FastSketchShape.from_total(total)
    left = FastAgmsSketch(shape, rng=np.random.default_rng(seed))
    return left, left.spawn_compatible()


class TestShape:
    def test_validation(self):
        with pytest.raises(SummaryError):
            FastSketchShape(rows=0, buckets=4)
        with pytest.raises(SummaryError):
            FastSketchShape.from_total(0)

    def test_from_total(self):
        shape = FastSketchShape.from_total(1000, rows=5)
        assert shape.rows == 5
        assert shape.buckets == 200
        assert shape.total == 1000

    def test_tiny_total(self):
        shape = FastSketchShape.from_total(2, rows=5)
        assert shape.rows == 2
        assert shape.buckets == 1


class TestFastAgms:
    def test_update_touches_one_counter_per_row(self):
        sketch, _ = _pair()
        sketch.update(42, +1)
        counters = sketch.counters()
        assert (np.abs(counters).sum(axis=1) == 1).all()

    def test_insert_delete_cancels(self):
        sketch, _ = _pair()
        sketch.update(7, +3)
        sketch.update(7, -3)
        assert np.allclose(sketch.counters(), 0.0)

    def test_join_size_estimate_accuracy(self):
        rng = np.random.default_rng(1)
        left, right = _pair(total=4000, seed=2)
        left_data = Counter(int(k) for k in rng.integers(1, 60, size=500))
        right_data = Counter(int(k) for k in rng.integers(1, 60, size=500))
        for key, count in left_data.items():
            left.update(key, count)
        for key, count in right_data.items():
            right.update(key, count)
        exact = sum(c * right_data[k] for k, c in left_data.items())
        estimate = left.join_size_estimate(right)
        assert abs(estimate - exact) / exact < 0.35

    def test_self_join_estimate(self):
        rng = np.random.default_rng(3)
        sketch, _ = _pair(total=4000, seed=4)
        data = Counter(int(k) for k in rng.integers(1, 40, size=600))
        for key, count in data.items():
            sketch.update(key, count)
        exact_f2 = sum(c * c for c in data.values())
        assert abs(sketch.self_join_size_estimate() - exact_f2) / exact_f2 < 0.35

    def test_estimate_symmetry(self):
        left, right = _pair(seed=5)
        for key in range(50):
            left.update(key)
            right.update(key + 25)
        assert left.join_size_estimate(right) == right.join_size_estimate(left)

    def test_incompatible_sketches_rejected(self):
        a, _ = _pair(seed=6)
        b, _ = _pair(seed=7)
        with pytest.raises(SummaryError):
            a.join_size_estimate(b)

    def test_zero_delta_noop(self):
        sketch, _ = _pair()
        sketch.update(1, 0)
        assert sketch.updates == 0

    def test_serialized_entries(self):
        sketch, _ = _pair(total=2000)
        assert sketch.serialized_entries() == sketch.shape.total

    def test_agreement_with_plain_agms_on_join_size(self):
        """Both estimators target the same inner product."""
        from repro.sketches.agms import AgmsSketch, SketchShape

        rng = np.random.default_rng(8)
        keys_left = [int(k) for k in rng.integers(1, 50, size=400)]
        keys_right = [int(k) for k in rng.integers(1, 50, size=400)]

        plain_left = AgmsSketch(SketchShape.from_total(3000), rng=np.random.default_rng(9))
        plain_right = plain_left.spawn_compatible()
        fast_left, fast_right = _pair(total=3000, seed=10)
        for key in keys_left:
            plain_left.update(key)
            fast_left.update(key)
        for key in keys_right:
            plain_right.update(key)
            fast_right.update(key)
        exact = sum(
            count * Counter(keys_right)[key]
            for key, count in Counter(keys_left).items()
        )
        assert abs(plain_left.join_size_estimate(plain_right) - exact) / exact < 0.4
        assert abs(fast_left.join_size_estimate(fast_right) - exact) / exact < 0.4
