"""Unit tests for the synthetic workload generators."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.generators import (
    StreamConfig,
    take,
    uniform_stream,
    zipf_stream,
    zipf_weights,
)


def test_zipf_weights_normalized():
    weights = zipf_weights(1000, 0.4)
    assert weights.sum() == pytest.approx(1.0)
    assert (weights > 0).all()


def test_zipf_weights_monotone_decreasing():
    weights = zipf_weights(100, 0.4)
    assert (np.diff(weights) <= 0).all()


def test_zipf_alpha_zero_is_uniform():
    weights = zipf_weights(50, 0.0)
    assert np.allclose(weights, 1.0 / 50)


def test_zipf_weights_invalid_domain():
    with pytest.raises(ConfigurationError):
        zipf_weights(0, 0.4)


def test_uniform_stream_range_and_determinism():
    keys_a = take(uniform_stream(domain=100, rng=np.random.default_rng(3)), 500)
    keys_b = take(uniform_stream(domain=100, rng=np.random.default_rng(3)), 500)
    assert (keys_a >= 1).all() and (keys_a <= 100).all()
    assert np.array_equal(keys_a, keys_b)


def test_uniform_stream_covers_domain():
    keys = take(uniform_stream(domain=10, rng=np.random.default_rng(1)), 2000)
    assert set(np.unique(keys)) == set(range(1, 11))


def test_zipf_stream_head_is_heavier():
    keys = take(zipf_stream(domain=1000, alpha=0.9, rng=np.random.default_rng(2)), 5000)
    head = np.mean(keys <= 100)
    assert head > 0.2  # far above the uniform 10%


def test_zipf_permute_spreads_popularity():
    keys = take(
        zipf_stream(domain=1000, alpha=0.9, rng=np.random.default_rng(2), permute=True),
        5000,
    )
    # Popular keys no longer concentrated at small values.
    assert np.mean(keys <= 100) < 0.2


def test_zipf_stream_within_domain():
    keys = take(zipf_stream(domain=64, alpha=0.4, rng=np.random.default_rng(4)), 1000)
    assert keys.min() >= 1 and keys.max() <= 64


def test_take_negative_rejected():
    with pytest.raises(ConfigurationError):
        take(iter([]), -1)


def test_stream_config_validation():
    StreamConfig().validate()
    with pytest.raises(ConfigurationError):
        StreamConfig(domain=0).validate()
    with pytest.raises(ConfigurationError):
        StreamConfig(alpha=-1).validate()
    with pytest.raises(ConfigurationError):
        StreamConfig(chunk=0).validate()
