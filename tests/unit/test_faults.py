"""Unit tests for the deterministic fault-injection framework."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    load_fault_plan,
)
from repro.net.simulator import EventScheduler


def outage(start=1.0, duration=2.0, links=((0, 1),)):
    return FaultEvent(
        kind=FaultKind.LINK_OUTAGE, start_s=start, duration_s=duration, links=links
    )


class TestFaultEvent:
    def test_validation_rejects_bad_windows(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.NODE_CRASH, start_s=-1.0, duration_s=1.0, nodes=(0,)).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.NODE_CRASH, start_s=0.0, duration_s=0.0, nodes=(0,)).validate()

    def test_kind_specific_requirements(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.NODE_CRASH, 0.0, 1.0).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.PARTITION, 0.0, 1.0).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.LINK_OUTAGE, 0.0, 1.0).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.LOSS_BURST, 0.0, 1.0, loss_probability=0.0).validate()
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.LATENCY_SPIKE, 0.0, 1.0, extra_latency_s=0.0).validate()

    def test_mesh_bounds(self):
        event = FaultEvent(FaultKind.NODE_CRASH, 0.0, 1.0, nodes=(7,))
        event.validate()  # fine without a mesh size
        with pytest.raises(ConfigurationError):
            event.validate(num_nodes=4)
        with pytest.raises(ConfigurationError):
            # A partition must leave somebody on the other side.
            FaultEvent(FaultKind.PARTITION, 0.0, 1.0, nodes=(0, 1)).validate(num_nodes=2)

    def test_partition_affects_only_cut_crossing_links(self):
        event = FaultEvent(FaultKind.PARTITION, 0.0, 1.0, nodes=(0, 1))
        assert event.affects_link(0, 2)
        assert event.affects_link(2, 1)
        assert not event.affects_link(0, 1)
        assert not event.affects_link(2, 3)

    def test_crash_affects_both_directions(self):
        event = FaultEvent(FaultKind.NODE_CRASH, 0.0, 1.0, nodes=(2,))
        assert event.affects_link(2, 0)
        assert event.affects_link(0, 2)
        assert not event.affects_link(0, 1)

    def test_dict_round_trip(self):
        event = FaultEvent(
            FaultKind.LOSS_BURST, 1.5, 2.5, links=((0, 1),), loss_probability=0.4
        )
        assert FaultEvent.from_dict(event.as_dict()) == event


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan.from_events(
            [outage(), FaultEvent(FaultKind.NODE_CRASH, 5.0, 1.0, nodes=(2,))]
        )
        restored = FaultPlan.from_json(json.dumps(plan.as_dicts()))
        assert restored == plan

    def test_parse_spec_grammar(self):
        plan = FaultPlan.parse(
            "partition@t=10s,d=5s; crash@t=8,d=2,node=1; loss@t=3,d=1,p=0.3;"
            " latency@t=4,d=1,extra=0.25; outage@t=1,d=1,link=0-2",
            num_nodes=4,
        )
        kinds = [event.kind for event in plan.events]
        assert kinds == [
            FaultKind.PARTITION,
            FaultKind.NODE_CRASH,
            FaultKind.LOSS_BURST,
            FaultKind.LATENCY_SPIKE,
            FaultKind.LINK_OUTAGE,
        ]
        partition = plan.events[0]
        assert partition.start_s == 10.0 and partition.duration_s == 5.0
        assert partition.nodes == (0, 1)  # default: first half of the mesh

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("bogus@t=1", num_nodes=4)
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("crash@d=2,node=1", num_nodes=4)  # missing t=
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("outage@t=1,link=0", num_nodes=4)  # malformed link
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("", num_nodes=4)

    def test_to_json_is_canonical_and_invertible(self):
        plan = FaultPlan.from_events(
            [outage(), FaultEvent(FaultKind.NODE_CRASH, 5.0, 1.0, nodes=(2,))]
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert FaultPlan.from_json(plan.to_json(indent=2)) == plan
        # sort_keys=True makes the text stable across dict orderings.
        assert plan.to_json() == FaultPlan.from_json(plan.to_json()).to_json()

    def test_to_spec_round_trips_through_parse(self):
        plan = FaultPlan.parse(
            "partition@t=10s,d=5s; crash@t=8,d=2,node=1; loss@t=3,d=1,p=0.3;"
            " latency@t=4,d=1,extra=0.25; outage@t=1,d=1,link=0-2",
            num_nodes=4,
        )
        assert FaultPlan.parse(plan.to_spec(), num_nodes=4) == plan

    def test_empty_plan_has_no_spec(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().to_spec()

    def test_load_fault_plan_from_files(self, tmp_path):
        plan = FaultPlan.from_events([outage()])
        json_file = tmp_path / "plan.json"
        json_file.write_text(json.dumps(plan.as_dicts()))
        assert load_fault_plan(str(json_file), 4) == plan
        spec_file = tmp_path / "plan.txt"
        spec_file.write_text("crash@t=2,d=1,node=0")
        loaded = load_fault_plan(str(spec_file), 4)
        assert loaded.events[0].kind is FaultKind.NODE_CRASH
        assert load_fault_plan("loss@t=1,d=1,p=0.2", 4).events[0].loss_probability == 0.2


class TestFaultInjector:
    @staticmethod
    def probe_at(scheduler, time, query, results):
        """Capture a point query mid-run (the scheduler drains fully)."""
        scheduler.schedule_at(time, lambda: results.append(query()))

    def test_windows_activate_and_deactivate(self):
        scheduler = EventScheduler()
        injector = FaultInjector(FaultPlan.from_events([outage(1.0, 2.0)]), 4)
        injector.install(scheduler)
        assert not injector.link_blocked(0, 1)
        during, reverse, after = [], [], []
        self.probe_at(scheduler, 1.5, lambda: injector.link_blocked(0, 1), during)
        self.probe_at(scheduler, 1.5, lambda: injector.link_blocked(1, 0), reverse)
        self.probe_at(scheduler, 3.5, lambda: injector.link_blocked(0, 1), after)
        scheduler.run()
        assert during == [True]
        assert reverse == [False]  # directed
        assert after == [False]
        assert injector.timeline == [(1.0, "link_outage", "start"), (3.0, "link_outage", "end")]

    def test_crash_and_partition_queries(self):
        scheduler = EventScheduler()
        plan = FaultPlan.from_events(
            [
                FaultEvent(FaultKind.NODE_CRASH, 1.0, 2.0, nodes=(2,)),
                FaultEvent(FaultKind.PARTITION, 1.0, 2.0, nodes=(0,)),
            ]
        )
        injector = FaultInjector(plan, 4)
        injector.install(scheduler)
        seen = []
        self.probe_at(
            scheduler,
            1.5,
            lambda: (
                injector.node_down(2),
                injector.node_down(0),
                injector.link_blocked(0, 3),  # partition cut
                injector.link_blocked(1, 2),  # crash endpoint
                injector.link_blocked(1, 3),
            ),
            seen,
        )
        scheduler.run()
        assert seen == [(True, False, True, True, False)]

    def test_loss_and_latency_compose(self):
        scheduler = EventScheduler()
        plan = FaultPlan.from_events(
            [
                FaultEvent(FaultKind.LOSS_BURST, 0.0, 5.0, loss_probability=0.5),
                FaultEvent(FaultKind.LOSS_BURST, 0.0, 5.0, loss_probability=0.5),
                FaultEvent(FaultKind.LATENCY_SPIKE, 0.0, 5.0, extra_latency_s=0.2),
            ]
        )
        injector = FaultInjector(plan, 4)
        injector.install(scheduler)
        during, after = [], []
        self.probe_at(
            scheduler, 1.0,
            lambda: (injector.extra_loss(0, 1), injector.extra_latency(0, 1)), during,
        )
        self.probe_at(
            scheduler, 6.0,
            lambda: (injector.extra_loss(0, 1), injector.extra_latency(0, 1)), after,
        )
        scheduler.run()
        assert during[0][0] == pytest.approx(0.75)  # 1 - 0.5^2
        assert during[0][1] == pytest.approx(0.2)
        assert after == [(0.0, 0.0)]

    def test_summary_counters(self):
        scheduler = EventScheduler()
        injector = FaultInjector(FaultPlan.from_events([outage()]), 4)
        injector.install(scheduler)
        injector.note_blocked()
        injector.note_blocked()
        scheduler.run()
        summary = injector.summary()
        assert summary["fault_events"] == 1.0
        assert summary["messages_blocked"] == 2.0
        assert summary["activations_link_outage"] == 1.0

    def test_plan_validated_against_mesh(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(
                FaultPlan.from_events(
                    [FaultEvent(FaultKind.NODE_CRASH, 0.0, 1.0, nodes=(9,))]
                ),
                4,
            )
