"""Unit tests for compression-factor selection."""

import numpy as np
import pytest

from repro.core.compression import (
    DEFAULT_KAPPA_GRID,
    LOSSLESS_MSE_THRESHOLD,
    choose_compression_factor,
    mse_for_budget,
    mse_statistics,
    spectral_mse_for_budget,
)
from repro.errors import SummaryError


def smooth_signal(length=512, seed=0, tick=0.5):
    rng = np.random.default_rng(seed)
    return np.rint(np.cumsum(rng.normal(0, tick, size=length)) + 500)


def noisy_signal(length=512, seed=1):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10_000, size=length).astype(float)


def test_empirical_matches_spectral_mse():
    signal = smooth_signal()
    for budget in (4, 16, 64):
        empirical = mse_for_budget(signal, budget)
        spectral = spectral_mse_for_budget(signal, budget)
        assert empirical == pytest.approx(spectral, rel=1e-9)


def test_mse_decreases_with_budget():
    signal = smooth_signal()
    values = [mse_for_budget(signal, b) for b in (2, 8, 32, 128)]
    assert values == sorted(values, reverse=True)


def test_mse_statistics_structure():
    signal = smooth_signal()
    points = mse_statistics(signal, (2, 8, 32))
    assert [p.kappa for p in points] == [2, 8, 32]
    for point in points:
        assert point.budget == max(1, 512 // point.kappa)
        assert point.mean_mse >= 0
        assert 0.0 <= point.lossless_fraction <= 1.0


def test_is_lossless_reflects_threshold():
    signal = smooth_signal()
    points = mse_statistics(signal, (2,))
    assert points[0].is_lossless == (points[0].mean_mse < LOSSLESS_MSE_THRESHOLD)


def test_choose_factor_on_smooth_signal_is_aggressive():
    signal = smooth_signal(tick=0.2)
    chosen = choose_compression_factor(signal, (2, 4, 8, 16, 32))
    assert chosen >= 8


def test_choose_factor_monotone_in_threshold():
    signal = smooth_signal()
    loose = choose_compression_factor(signal, DEFAULT_KAPPA_GRID, threshold=100.0)
    tight = choose_compression_factor(signal, DEFAULT_KAPPA_GRID, threshold=0.01)
    assert loose >= tight


def test_choose_factor_on_white_noise_is_conservative():
    signal = noisy_signal()
    chosen = choose_compression_factor(signal, (2, 4, 8))
    assert chosen == 2  # best effort: nothing meets the threshold


def test_invalid_inputs():
    with pytest.raises(SummaryError):
        mse_statistics([], (2,))
    with pytest.raises(SummaryError):
        mse_statistics(smooth_signal(), (0,))
    with pytest.raises(SummaryError):
        spectral_mse_for_budget([], 2)
