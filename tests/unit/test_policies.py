"""Unit tests for the forwarding policies (in isolation from the runtime)."""

import numpy as np
import pytest

from repro.config import Algorithm, PolicyConfig
from repro.core.flow import FlowSettings
from repro.core.policies import (
    BloomPolicy,
    BroadcastPolicy,
    DftPolicy,
    DfttPolicy,
    PolicyContext,
    RoundRobinPolicy,
    SketchPolicy,
    make_policy,
    make_shared_state,
)
from repro.errors import ConfigurationError
from repro.streams.tuples import StreamId, StreamTuple

WINDOW = 32
DOMAIN = 1024


def make_context(algorithm, num_nodes=4, seed=0, **policy_kwargs):
    config = PolicyConfig(algorithm=algorithm, kappa=4.0, **policy_kwargs)
    return PolicyContext(
        node_id=0,
        peer_ids=tuple(range(1, num_nodes)),
        window_size=WINDOW,
        domain=DOMAIN,
        config=config,
        rng=np.random.default_rng(seed),
    )


def make_tuple(key, stream=StreamId.R, index=0):
    return StreamTuple(stream=stream, key=key, origin_node=0, arrival_index=index)


def feed(policy, keys, stream=StreamId.R):
    for index, key in enumerate(keys):
        policy.on_local_insert(make_tuple(key, stream, index), [])


class TestPolicyContext:
    def test_rejects_self_peer(self):
        with pytest.raises(ConfigurationError):
            PolicyContext(
                node_id=0,
                peer_ids=(0, 1),
                window_size=8,
                domain=10,
                config=PolicyConfig(),
            )

    def test_rejects_duplicate_peers(self):
        with pytest.raises(ConfigurationError):
            PolicyContext(
                node_id=0,
                peer_ids=(1, 1),
                window_size=8,
                domain=10,
                config=PolicyConfig(),
            )

    def test_num_nodes(self):
        context = make_context(Algorithm.BASE)
        assert context.num_nodes == 4


class TestFactory:
    @pytest.mark.parametrize("algorithm", list(Algorithm))
    def test_factory_builds_each_algorithm(self, algorithm):
        context = make_context(algorithm)
        shared = make_shared_state(context.config, WINDOW, rng=np.random.default_rng(1))
        policy = make_policy(context, shared)
        assert policy.name == algorithm.value or (
            algorithm is Algorithm.ROUND_ROBIN and policy.name == "RR"
        )

    def test_bloom_without_shared_state_rejected(self):
        context = make_context(Algorithm.BLOOM)
        with pytest.raises(ConfigurationError):
            make_policy(context, {})

    def test_sketch_without_shared_state_rejected(self):
        context = make_context(Algorithm.SKCH)
        with pytest.raises(ConfigurationError):
            make_policy(context, {})


class TestBroadcastPolicy:
    def test_sends_to_everyone(self):
        policy = BroadcastPolicy(make_context(Algorithm.BASE))
        assert policy.choose_destinations(make_tuple(5)) == [1, 2, 3]


class TestRoundRobinPolicy:
    def test_integer_budget_cycles(self):
        context = make_context(
            Algorithm.ROUND_ROBIN, flow=FlowSettings(budget_override=2.0)
        )
        policy = RoundRobinPolicy(context)
        first = policy.choose_destinations(make_tuple(1))
        second = policy.choose_destinations(make_tuple(2))
        third = policy.choose_destinations(make_tuple(3))
        assert first == [1, 2]
        assert second == [3, 1]
        assert third == [2, 3]

    def test_fractional_budget_expected_rate(self):
        context = make_context(
            Algorithm.ROUND_ROBIN, num_nodes=6, flow=FlowSettings(budget_override=1.5)
        )
        policy = RoundRobinPolicy(context)
        total = sum(len(policy.choose_destinations(make_tuple(i))) for i in range(2000))
        assert total / 2000 == pytest.approx(1.5, abs=0.1)


class TestDftPolicy:
    def test_unknown_peers_get_prior_similarity(self):
        policy = DftPolicy(make_context(Algorithm.DFT))
        feed(policy, range(1, 33))
        similarities = policy.peer_similarities(StreamId.R)
        assert all(value == 0.5 for value in similarities.values())

    def test_summaries_broadcast_after_refresh_interval(self):
        context = make_context(Algorithm.DFT, summary_refresh_interval=8)
        policy = DftPolicy(context)
        feed(policy, range(1, 9))
        assert policy.outbox.has_pending(1)

    def test_remote_summary_shapes_similarity(self):
        context = make_context(Algorithm.DFT, num_nodes=3, summary_refresh_interval=4)
        policy = DftPolicy(context)
        # Local R window lives around 100.
        feed(policy, [100 + (i % 5) for i in range(WINDOW)], stream=StreamId.R)

        def remote_map(center, seed):
            rng = np.random.default_rng(seed)
            values = rng.integers(center - 5, center + 5, size=WINDOW).astype(float)
            spectrum = np.fft.fft(values)
            return {k: complex(spectrum[k]) for k in range(8)}

        from repro.core.summaries import SummaryUpdate

        near = SummaryUpdate("dft", StreamId.S, 1, WINDOW, 8, remote_map(100, 1), False)
        far = SummaryUpdate("dft", StreamId.S, 1, WINDOW, 8, remote_map(900, 2), False)
        policy.on_remote_summary(1, near)
        policy.on_remote_summary(2, far)
        similarities = policy.peer_similarities(StreamId.R)
        assert similarities[1] > similarities[2]

    def test_destinations_within_peers(self):
        policy = DftPolicy(make_context(Algorithm.DFT))
        feed(policy, range(1, 40))
        for index in range(20):
            destinations = policy.choose_destinations(make_tuple(index + 1))
            assert set(destinations).issubset({1, 2, 3})

    def test_diagnostics_keys(self):
        policy = DftPolicy(make_context(Algorithm.DFT))
        diagnostics = policy.diagnostics()
        assert "uniform_detections" in diagnostics
        assert "dft_broadcasts" in diagnostics


class TestDfttPolicy:
    def _policy_with_remote(self, center=100, num_nodes=3):
        context = make_context(Algorithm.DFTT, num_nodes=num_nodes, summary_refresh_interval=4)
        policy = DfttPolicy(context)
        feed(policy, [center + (i % 3) for i in range(WINDOW)], stream=StreamId.R)
        from repro.core.summaries import SummaryUpdate

        values = np.full(WINDOW, float(center))
        spectrum = np.fft.fft(values)
        payload = {k: complex(spectrum[k]) for k in range(8)}
        update = SummaryUpdate("dft", StreamId.S, 1, WINDOW, 8, payload, False)
        policy.on_remote_summary(1, update)
        return policy

    def test_reconstruction_lazy_and_cached(self):
        policy = self._policy_with_remote()
        window = policy.reconstructed_window(1, StreamId.S)
        assert window is not None
        assert policy.reconstruction_refreshes == 1
        policy.reconstructed_window(1, StreamId.S)
        assert policy.reconstruction_refreshes == 1  # cached

    def test_join_estimate_hits_constant_window(self):
        policy = self._policy_with_remote(center=100)
        estimate = policy.join_estimate(make_tuple(100, StreamId.R), 1)
        assert estimate is not None and estimate > WINDOW // 2

    def test_join_estimate_unknown_peer_is_none(self):
        policy = self._policy_with_remote()
        assert policy.join_estimate(make_tuple(100, StreamId.R), 2) is None

    def test_destinations_prefer_estimated_matches(self):
        policy = self._policy_with_remote(center=100)
        destinations = policy.choose_destinations(make_tuple(100, StreamId.R))
        assert 1 in destinations

    def test_match_tolerance_floor(self):
        policy = self._policy_with_remote()
        assert policy.match_tolerance(StreamId.R) >= 0.5


class TestBloomPolicy:
    def _pair(self, num_nodes=3, seed=2):
        config = PolicyConfig(
            algorithm=Algorithm.BLOOM, kappa=2.0, summary_refresh_interval=4
        )
        shared = make_shared_state(config, WINDOW, rng=np.random.default_rng(seed))
        contexts = [
            PolicyContext(
                node_id=i,
                peer_ids=tuple(p for p in range(num_nodes) if p != i),
                window_size=WINDOW,
                domain=DOMAIN,
                config=config,
                rng=np.random.default_rng(seed + i),
            )
            for i in range(num_nodes)
        ]
        return [BloomPolicy(c, shared) for c in contexts]

    def test_snapshot_exchange_enables_membership(self):
        a, b, _ = self._pair()
        feed(b, [500] * 8, stream=StreamId.S)
        update = b.outbox.take(0)
        for u in update:
            a.on_remote_summary(1, u)
        remote = a.remote_filter(1, StreamId.S)
        assert remote is not None
        assert 500 in remote

    def test_destinations_follow_hits(self):
        a, b, c = self._pair()
        feed(b, [500] * 8, stream=StreamId.S)
        feed(c, [900] * 8, stream=StreamId.S)
        for update in b.outbox.take(0):
            a.on_remote_summary(1, update)
        for update in c.outbox.take(0):
            a.on_remote_summary(2, update)
        hits = [a.choose_destinations(make_tuple(500, StreamId.R, i)) for i in range(20)]
        assert all(1 in destinations for destinations in hits)

    def test_window_eviction_updates_filter(self):
        a, _, _ = self._pair()
        item = make_tuple(42, StreamId.R)
        a.on_local_insert(item, [])
        assert 42 in a.filters[StreamId.R]
        newer = make_tuple(43, StreamId.R)
        a.on_local_insert(newer, [item])
        assert 42 not in a.filters[StreamId.R]


class TestSketchPolicy:
    def test_similarities_track_overlap(self):
        config = PolicyConfig(
            algorithm=Algorithm.SKCH, kappa=1.0, summary_refresh_interval=4
        )
        shared = make_shared_state(config, WINDOW, rng=np.random.default_rng(3))
        contexts = [
            PolicyContext(
                node_id=i,
                peer_ids=tuple(p for p in range(3) if p != i),
                window_size=WINDOW,
                domain=DOMAIN,
                config=config,
                rng=np.random.default_rng(10 + i),
            )
            for i in range(3)
        ]
        a, b, c = [SketchPolicy(ctx, shared) for ctx in contexts]
        feed(a, [100 + i % 4 for i in range(WINDOW)], stream=StreamId.R)
        feed(b, [100 + i % 4 for i in range(WINDOW)], stream=StreamId.S)  # overlaps a
        feed(c, [700 + i % 4 for i in range(WINDOW)], stream=StreamId.S)  # disjoint
        for update in b.outbox.take(0):
            a.on_remote_summary(1, update)
        for update in c.outbox.take(0):
            a.on_remote_summary(2, update)
        similarities = a.peer_similarities(StreamId.R)
        assert similarities[1] > similarities[2]
