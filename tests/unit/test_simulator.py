"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.net.simulator import EventScheduler


def test_clock_starts_at_zero():
    scheduler = EventScheduler()
    assert scheduler.now == 0.0
    assert scheduler.pending == 0


def test_events_run_in_time_order():
    scheduler = EventScheduler()
    order = []
    scheduler.schedule_at(2.0, lambda: order.append("b"))
    scheduler.schedule_at(1.0, lambda: order.append("a"))
    scheduler.schedule_at(3.0, lambda: order.append("c"))
    scheduler.run()
    assert order == ["a", "b", "c"]
    assert scheduler.now == 3.0


def test_simultaneous_events_preserve_insertion_order():
    scheduler = EventScheduler()
    order = []
    for tag in range(5):
        scheduler.schedule_at(1.0, lambda t=tag: order.append(t))
    scheduler.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_in_is_relative_to_now():
    scheduler = EventScheduler()
    seen = []
    scheduler.schedule_at(5.0, lambda: scheduler.schedule_in(2.5, lambda: seen.append(scheduler.now)))
    scheduler.run()
    assert seen == [7.5]


def test_scheduling_in_the_past_raises():
    scheduler = EventScheduler()
    scheduler.schedule_at(1.0, lambda: None)
    scheduler.run()
    with pytest.raises(SimulationError):
        scheduler.schedule_at(0.5, lambda: None)


def test_negative_delay_raises():
    scheduler = EventScheduler()
    with pytest.raises(SimulationError):
        scheduler.schedule_in(-1.0, lambda: None)


def test_run_until_stops_before_later_events():
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule_at(1.0, lambda: fired.append(1))
    scheduler.schedule_at(10.0, lambda: fired.append(10))
    now = scheduler.run(until=5.0)
    assert fired == [1]
    assert now == 5.0
    assert scheduler.pending == 1
    scheduler.run()
    assert fired == [1, 10]


def test_run_until_advances_clock_even_with_no_events():
    scheduler = EventScheduler()
    assert scheduler.run(until=4.0) == 4.0
    assert scheduler.now == 4.0


def test_max_events_limit():
    scheduler = EventScheduler()
    fired = []
    for i in range(10):
        scheduler.schedule_at(float(i), lambda i=i: fired.append(i))
    scheduler.run(max_events=3)
    assert fired == [0, 1, 2]


def test_cancelled_events_do_not_fire():
    scheduler = EventScheduler()
    fired = []
    event = scheduler.schedule_at(1.0, lambda: fired.append("cancelled"))
    scheduler.schedule_at(2.0, lambda: fired.append("kept"))
    event.cancel()
    scheduler.run()
    assert fired == ["kept"]
    assert scheduler.events_processed == 1


def test_step_executes_single_event():
    scheduler = EventScheduler()
    fired = []
    scheduler.schedule_at(1.0, lambda: fired.append(1))
    scheduler.schedule_at(2.0, lambda: fired.append(2))
    assert scheduler.step() is True
    assert fired == [1]
    assert scheduler.step() is True
    assert scheduler.step() is False


def test_events_scheduled_during_run_are_processed():
    scheduler = EventScheduler()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            scheduler.schedule_in(1.0, lambda: chain(depth + 1))

    scheduler.schedule_at(0.0, lambda: chain(0))
    scheduler.run()
    assert fired == [0, 1, 2, 3]
    assert scheduler.now == 3.0


def test_pending_counts_only_live_events():
    scheduler = EventScheduler()
    events = [scheduler.schedule_at(float(i + 1), lambda: None) for i in range(4)]
    assert scheduler.pending == 4
    events[0].cancel()
    events[2].cancel()
    assert scheduler.pending == 2


def test_cancel_is_idempotent_for_accounting():
    scheduler = EventScheduler()
    event = scheduler.schedule_at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert scheduler.pending == 0


def test_cancelled_majority_triggers_compaction():
    scheduler = EventScheduler()
    size = EventScheduler.COMPACTION_MIN_QUEUE * 2
    events = [scheduler.schedule_at(float(i + 1), lambda: None) for i in range(size)]
    assert scheduler.compactions == 0
    for event in events[: size // 2 + 1]:
        event.cancel()
    assert scheduler.compactions == 1
    # Heap now holds only the live survivors.
    assert scheduler.pending == size - (size // 2 + 1)
    assert len(scheduler._queue) == scheduler.pending


def test_small_queues_are_not_compacted():
    scheduler = EventScheduler()
    events = [scheduler.schedule_at(float(i + 1), lambda: None) for i in range(8)]
    for event in events:
        event.cancel()
    assert scheduler.compactions == 0
    assert scheduler.pending == 0


def test_compaction_preserves_execution_order():
    scheduler = EventScheduler()
    size = EventScheduler.COMPACTION_MIN_QUEUE * 2
    fired = []
    events = []
    for i in range(size):
        events.append(
            scheduler.schedule_at(float(i + 1), lambda i=i: fired.append(i))
        )
    cancelled = set(range(0, size, 2)) | {1, 3, 5}
    for index in sorted(cancelled):
        events[index].cancel()
    assert scheduler.compactions >= 1
    scheduler.run()
    assert fired == [i for i in range(size) if i not in cancelled]


def test_reentrant_run_rejected():
    scheduler = EventScheduler()
    errors = []

    def reenter():
        try:
            scheduler.run()
        except SimulationError as exc:
            errors.append(exc)

    scheduler.schedule_at(0.0, reenter)
    scheduler.run()
    assert len(errors) == 1
