"""Unit tests for configuration dataclasses."""

import math

import pytest

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.errors import ConfigurationError


class TestPolicyConfig:
    def test_defaults_validate(self):
        PolicyConfig().validate()

    def test_summary_budget(self):
        config = PolicyConfig(kappa=256.0)
        assert config.summary_budget(1024) == 4
        assert config.summary_budget(100) == 1  # floor at one entry

    def test_invalid_fields(self):
        with pytest.raises(ConfigurationError):
            PolicyConfig(kappa=0.5).validate()
        with pytest.raises(ConfigurationError):
            PolicyConfig(summary_refresh_interval=0).validate()
        with pytest.raises(ConfigurationError):
            PolicyConfig(delta_tolerance=-1).validate()
        with pytest.raises(ConfigurationError):
            PolicyConfig(explore_probability=1.5).validate()

    def test_with_overrides(self):
        config = PolicyConfig(kappa=8.0)
        updated = config.with_overrides(kappa=16.0)
        assert updated.kappa == 16.0
        assert config.kappa == 8.0  # original frozen


class TestWorkloadConfig:
    def test_defaults_validate(self):
        WorkloadConfig().validate()

    def test_invalid_fields(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(total_tuples=0).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(domain=1).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(arrival_rate=0).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(skew=-0.1).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(spread=1.0).validate()


class TestSystemConfig:
    def test_defaults_validate(self):
        SystemConfig().validate()

    def test_default_link_is_latency_only(self):
        config = SystemConfig()
        assert math.isinf(config.link.bandwidth_bps)

    def test_invalid_fields(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_nodes=1).validate()
        with pytest.raises(ConfigurationError):
            SystemConfig(window_size=0).validate()
        with pytest.raises(ConfigurationError):
            SystemConfig(sender_paced_bps=0).validate()
        with pytest.raises(ConfigurationError):
            SystemConfig(summary_flush_multiple=0).validate()
        with pytest.raises(ConfigurationError):
            SystemConfig(shadow_window_size=0).validate()

    def test_nested_validation_propagates(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(policy=PolicyConfig(kappa=0.1)).validate()

    def test_effective_shadow_window_defaults_to_window(self):
        assert SystemConfig(window_size=64).effective_shadow_window == 64
        assert SystemConfig(window_size=64, shadow_window_size=7).effective_shadow_window == 7

    def test_as_dict_echoes_key_parameters(self):
        config = SystemConfig(
            num_nodes=6,
            policy=PolicyConfig(algorithm=Algorithm.BLOOM, kappa=32.0),
            workload=WorkloadConfig(kind=WorkloadKind.FINANCIAL),
            seed=99,
        )
        snapshot = config.as_dict()
        assert snapshot["num_nodes"] == 6
        assert snapshot["algorithm"] == "BLOOM"
        assert snapshot["kappa"] == 32.0
        assert snapshot["workload"] == "FIN"
        assert snapshot["seed"] == 99

    def test_with_overrides(self):
        config = SystemConfig(num_nodes=4)
        assert config.with_overrides(num_nodes=8).num_nodes == 8
