"""Unit tests for the full-mesh network."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import LinkSpec
from repro.net.message import Message, MessageKind
from repro.net.simulator import EventScheduler
from repro.net.topology import Network


class Recorder:
    def __init__(self):
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def _network(n=3, spec=None):
    scheduler = EventScheduler()
    network = Network(scheduler, spec=spec or LinkSpec(), rng=np.random.default_rng(5))
    endpoints = [Recorder() for _ in range(n)]
    for node_id, endpoint in enumerate(endpoints):
        network.register(node_id, endpoint)
    return scheduler, network, endpoints


def test_register_rejects_duplicates():
    _, network, _ = _network(2)
    with pytest.raises(ConfigurationError):
        network.register(0, Recorder())


def test_send_delivers_to_destination_only():
    scheduler, network, endpoints = _network(3)
    message = Message(kind=MessageKind.TUPLE, source=0, destination=2)
    network.send(message)
    scheduler.run()
    assert endpoints[2].received == [message]
    assert endpoints[1].received == []


def test_self_send_rejected():
    _, network, _ = _network(2)
    with pytest.raises(SimulationError):
        network.send(Message(kind=MessageKind.TUPLE, source=1, destination=1))


def test_send_to_unregistered_endpoint_rejected():
    _, network, _ = _network(2)
    with pytest.raises(SimulationError):
        network.send(Message(kind=MessageKind.TUPLE, source=0, destination=9))


def test_links_are_per_direction():
    _, network, _ = _network(2)
    forward = network.link(0, 1)
    backward = network.link(1, 0)
    assert forward is not backward
    assert network.link(0, 1) is forward  # cached


def test_stats_accumulate_globally_and_per_sender():
    scheduler, network, _ = _network(3)
    for destination in (1, 2):
        network.send(Message(kind=MessageKind.TUPLE, source=0, destination=destination))
    network.send(Message(kind=MessageKind.SUMMARY, source=1, destination=0, summary_entries=4))
    scheduler.run()
    assert network.stats.total_messages == 3
    assert network.per_sender_stats[0].total_messages == 2
    assert network.per_sender_stats[1].total_messages == 1
    assert network.stats.summary_entries == 4


def test_node_ids_sorted():
    _, network, _ = _network(3)
    assert network.node_ids == (0, 1, 2)


def test_backlog_reporting():
    scheduler, network, _ = _network(2, spec=LinkSpec(latency_min_s=0.0, latency_max_s=0.0))
    assert network.backlog_seconds(0, 1) == 0.0
    for _ in range(3):
        network.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
    assert network.backlog_seconds(0, 1) > 0.0
    assert network.total_backlog_seconds() == pytest.approx(network.backlog_seconds(0, 1))
    scheduler.run()
    assert network.total_backlog_seconds() == 0.0
