"""Unit tests for the synthetic NWRK workload."""

import itertools
from collections import Counter

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.network import (
    NetworkTraceConfig,
    network_packets,
    network_trace_stream,
)


def _flows(count=5000, seed=9, **kwargs):
    config = NetworkTraceConfig(**kwargs) if kwargs else NetworkTraceConfig()
    stream = network_trace_stream(config, rng=np.random.default_rng(seed))
    return list(itertools.islice(stream, count))


def test_flows_within_domain():
    flows = _flows(domain=500, heavy_flows=16)
    assert min(flows) >= 1
    assert max(flows) <= 500


def test_heavy_hitters_dominate():
    flows = _flows(domain=2**16, heavy_flows=32, heavy_fraction=0.8)
    counts = Counter(flows)
    top = sum(count for _, count in counts.most_common(32))
    assert top / len(flows) > 0.5


def test_bursts_create_temporal_locality():
    flows = _flows(heavy_fraction=0.9, burst_length_mean=50.0)
    repeats = sum(1 for a, b in zip(flows[:-1], flows[1:]) if a == b)
    assert repeats / len(flows) > 0.4


def test_zero_heavy_fraction_is_pure_scanner_noise():
    flows = _flows(count=2000, domain=10_000, heavy_fraction=0.0)
    counts = Counter(flows)
    assert counts.most_common(1)[0][1] < 10


def test_config_validation():
    with pytest.raises(ConfigurationError):
        NetworkTraceConfig(domain=0).validate()
    with pytest.raises(ConfigurationError):
        NetworkTraceConfig(heavy_flows=0).validate()
    with pytest.raises(ConfigurationError):
        NetworkTraceConfig(domain=10, heavy_flows=11).validate()
    with pytest.raises(ConfigurationError):
        NetworkTraceConfig(heavy_fraction=1.5).validate()
    with pytest.raises(ConfigurationError):
        NetworkTraceConfig(burst_length_mean=0.5).validate()


def test_packet_records():
    packets = network_packets(rng=np.random.default_rng(2))
    for flow_id, size, flags in itertools.islice(packets, 50):
        assert flow_id >= 1
        assert size in (40, 576, 1500)
        assert 0 <= flags < 64


def test_determinism():
    assert _flows(seed=7) == _flows(seed=7)
