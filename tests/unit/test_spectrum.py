"""Unit tests for power-spectrum estimation."""

import numpy as np
import pytest

from repro.dft.spectrum import (
    cross_correlation_at_zero_lag,
    cross_power_spectrum,
    periodogram,
)
from repro.errors import SummaryError


def test_periodogram_is_real_nonnegative():
    rng = np.random.default_rng(0)
    spectrum = np.fft.fft(rng.normal(size=32))
    power = periodogram(spectrum)
    assert power.dtype == np.float64
    assert (power >= 0).all()


def test_periodogram_total_power_is_signal_energy():
    rng = np.random.default_rng(1)
    signal = rng.normal(size=64)
    power = periodogram(np.fft.fft(signal))
    assert power.sum() == pytest.approx(np.sum(signal**2))


def test_cross_spectrum_of_identical_signals_is_periodogram():
    rng = np.random.default_rng(2)
    spectrum = np.fft.fft(rng.normal(size=16))
    cross = cross_power_spectrum(spectrum, spectrum)
    assert np.allclose(cross.real, periodogram(spectrum))
    assert np.allclose(cross.imag, 0.0, atol=1e-12)


def test_zero_lag_correlation_matches_time_domain():
    rng = np.random.default_rng(3)
    x = rng.normal(size=32)
    y = rng.normal(size=32)
    via_spectrum = cross_correlation_at_zero_lag(np.fft.fft(x), np.fft.fft(y))
    assert via_spectrum == pytest.approx(float(np.dot(x, y)))


def test_mismatched_sizes_rejected():
    with pytest.raises(SummaryError):
        cross_power_spectrum(np.ones(4, dtype=complex), np.ones(8, dtype=complex))


def test_empty_rejected():
    with pytest.raises(SummaryError):
        periodogram(np.array([], dtype=complex))
