"""Unit tests for Goertzel single-bin DFT evaluation."""

import numpy as np
import pytest

from repro.dft.goertzel import goertzel_bin, goertzel_bins, goertzel_power
from repro.dft.transform import dft
from repro.errors import SummaryError


def test_matches_fft_every_bin():
    rng = np.random.default_rng(0)
    signal = rng.normal(size=32)
    spectrum = dft(signal)
    for k in range(32):
        assert goertzel_bin(signal, k) == pytest.approx(spectrum[k], abs=1e-8)


def test_matches_fft_odd_length():
    rng = np.random.default_rng(1)
    signal = rng.normal(size=17)
    spectrum = dft(signal)
    for k in (0, 1, 8, 16):
        assert goertzel_bin(signal, k) == pytest.approx(spectrum[k], abs=1e-8)


def test_dc_bin_is_sum():
    signal = np.array([1.0, 2.0, 3.0])
    assert goertzel_bin(signal, 0) == pytest.approx(6.0)


def test_bins_batch():
    rng = np.random.default_rng(2)
    signal = rng.normal(size=16)
    values = goertzel_bins(signal, [0, 3, 7])
    spectrum = dft(signal)
    assert np.allclose(values, spectrum[[0, 3, 7]], atol=1e-8)


def test_power_matches_magnitude_squared():
    rng = np.random.default_rng(3)
    signal = rng.normal(size=24)
    spectrum = dft(signal)
    for k in (0, 1, 5, 12):
        assert goertzel_power(signal, k) == pytest.approx(
            abs(spectrum[k]) ** 2, rel=1e-8, abs=1e-8
        )


def test_pure_tone_detection():
    w = 64
    n = np.arange(w)
    signal = np.sin(2 * np.pi * 9 * n / w)
    assert goertzel_power(signal, 9) > 100 * goertzel_power(signal, 10)


def test_invalid_inputs():
    with pytest.raises(SummaryError):
        goertzel_bin([], 0)
    with pytest.raises(SummaryError):
        goertzel_bin([1.0, 2.0], 2)
    with pytest.raises(SummaryError):
        goertzel_power([1.0], -1)
