"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, config_from_args, main
from repro.config import Algorithm, WindowKind, WorkloadKind


def parse(argv):
    return build_parser().parse_args(argv)


FAST = ["--tuples", "400", "--nodes", "3", "--window", "48", "--domain", "256"]


class TestArgumentTranslation:
    def test_defaults(self):
        config = config_from_args(parse([]))
        assert config.policy.algorithm is Algorithm.DFTT
        assert config.num_nodes == 6
        assert config.workload.kind is WorkloadKind.ZIPF
        assert config.window_kind is WindowKind.COUNT
        config.validate()

    def test_algorithm_and_workload_choices(self):
        config = config_from_args(
            parse(["--algorithm", "BLOOM", "--workload", "FIN"])
        )
        assert config.policy.algorithm is Algorithm.BLOOM
        assert config.workload.kind is WorkloadKind.FINANCIAL

    def test_time_windows(self):
        config = config_from_args(parse(["--window-seconds", "2.5"]))
        assert config.window_kind is WindowKind.TIME
        assert config.window_seconds == 2.5

    def test_budget_and_loss(self):
        config = config_from_args(parse(["--budget", "2.0", "--loss", "0.1"]))
        assert config.policy.flow.budget_override == 2.0
        assert config.link.loss_probability == 0.1

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            parse(["--algorithm", "MAGIC"])


class TestMain:
    def test_text_output(self, capsys):
        assert main(FAST + ["--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "epsilon" in out
        assert "msgs/result" in out

    def test_json_output(self, capsys):
        assert main(FAST + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["algorithm"] == "DFTT"
        assert "epsilon" in payload["metrics"]
        assert "node_diagnostics" not in payload

    def test_json_verbose_includes_diagnostics(self, capsys):
        assert main(FAST + ["--json", "--verbose"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["node_diagnostics"]) == 3

    def test_invalid_config_returns_error(self, capsys):
        assert main(["--nodes", "1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_verbose_text(self, capsys):
        assert main(FAST + ["--verbose"]) == 0
        assert "node 0:" in capsys.readouterr().out

    def test_deterministic_across_invocations(self, capsys):
        main(FAST + ["--json", "--seed", "11"])
        first = json.loads(capsys.readouterr().out)
        main(FAST + ["--json", "--seed", "11"])
        second = json.loads(capsys.readouterr().out)
        assert first["metrics"] == second["metrics"]


class TestExperimentsDispatch:
    def test_help_lists_subcommands(self, capsys):
        assert main(["experiments", "--help"]) == 0
        out = capsys.readouterr().out
        assert "chaos" in out and "report" in out

    def test_missing_subcommand_is_usage_error(self, capsys):
        assert main(["experiments"]) == 2
        assert "chaos" in capsys.readouterr().err

    def test_unknown_subcommand_is_usage_error(self, capsys):
        assert main(["experiments", "mystery"]) == 2
        assert "mystery" in capsys.readouterr().err

    def test_chaos_subcommand_reaches_its_parser(self, capsys):
        # --help exits 0 from chaos's own argparse; proves dispatch wiring
        # without paying for a sweep.
        with pytest.raises(SystemExit) as excinfo:
            main(["experiments", "chaos", "--help"])
        assert excinfo.value.code == 0
        assert "--fault-grid" in capsys.readouterr().out
