"""Unit tests for repro.parallel: jobs resolution, fingerprints, cache."""

import os
import pickle

import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.errors import ConfigurationError
from repro.parallel import (
    RunCache,
    canonical_config_dict,
    code_version,
    config_fingerprint,
    resolve_cache,
    resolve_jobs,
)
from repro.parallel.cache import canonical_value
from repro.streams.tuples import (
    StreamId,
    StreamTuple,
    peek_next_tuple_ids,
    reset_tuple_ids,
)


def small_config(seed=7, kappa=4.0):
    return SystemConfig(
        num_nodes=3,
        window_size=64,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=kappa),
        workload=WorkloadConfig(total_tuples=200, domain=128),
        seed=seed,
    )


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert resolve_jobs(0) == 1

    def test_rejects_negative_jobs(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)

    def test_rejects_non_integer_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs()

    def test_rejects_non_positive_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigurationError):
            resolve_jobs()


class TestCanonicalEncoding:
    def test_enums_become_values_and_tuples_become_lists(self):
        tree = canonical_config_dict(small_config())
        assert tree["policy"]["algorithm"] == Algorithm.DFTT.value
        assert isinstance(tree["faults"]["events"], list)

    def test_infinite_bandwidth_is_representable(self):
        tree = canonical_config_dict(small_config())
        assert tree["link"]["bandwidth_bps"] == float("inf")

    def test_unfingerprintable_value_fails_loudly(self):
        with pytest.raises(ConfigurationError):
            canonical_value(object())


class TestFingerprint:
    def test_stable_across_calls(self):
        assert config_fingerprint(small_config()) == config_fingerprint(
            small_config()
        )

    def test_sensitive_to_any_config_field(self):
        base = config_fingerprint(small_config())
        assert config_fingerprint(small_config(seed=8)) != base
        assert config_fingerprint(small_config(kappa=8.0)) != base

    def test_sensitive_to_extractors(self):
        base = config_fingerprint(small_config())
        with_extras = config_fingerprint(
            small_config(), (("worst", "repro.experiments.chaos:worst_case_extractor"),)
        )
        assert with_extras != base

    def test_sensitive_to_cache_salt(self, monkeypatch):
        base = config_fingerprint(small_config())
        monkeypatch.setenv("REPRO_CACHE_SALT", "invalidate-me")
        assert config_fingerprint(small_config()) != base

    def test_code_version_is_memoized_and_hex(self):
        first = code_version()
        assert first == code_version()
        assert len(first) == 64
        int(first, 16)


class TestRunCache:
    def test_store_then_lookup_round_trips(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = cache.key_for(small_config())
        assert cache.lookup(key) is None
        cache.store(key, {"payload": 1}, {"worst": 2.5})
        entry = cache.lookup(key)
        assert entry == {"result": {"payload": 1}, "extras": {"worst": 2.5}}
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_corrupt_entry_is_deleted_and_missed(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = cache.key_for(small_config())
        cache.store(key, {"payload": 1}, {})
        path = cache._path(key)
        with open(path, "wb") as handle:
            handle.write(b"torn write, not a pickle")
        assert cache.lookup(key) is None
        assert not os.path.exists(path)

    def test_stale_shaped_entry_is_deleted_and_missed(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = cache.key_for(small_config())
        os.makedirs(os.path.dirname(cache._path(key)), exist_ok=True)
        with open(cache._path(key), "wb") as handle:
            pickle.dump(["not", "a", "dict"], handle)
        assert cache.lookup(key) is None
        assert not os.path.exists(cache._path(key))

    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = cache.key_for(small_config())
        assert cache._path(key) == os.path.join(
            str(tmp_path), key[:2], key + ".pkl"
        )

    def test_spec_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path))
        rebuilt = RunCache.from_spec(cache.spec())
        assert rebuilt.directory == cache.directory
        assert RunCache.from_spec(None) is None

    def test_stats_line_is_greppable(self, tmp_path):
        cache = RunCache(str(tmp_path))
        assert cache.stats_line() == (
            "cache hits=0 misses=0 stores=0 dir=%s" % tmp_path
        )

    def test_write_manifest(self, tmp_path):
        import json

        cache = RunCache(str(tmp_path))
        path = cache.write_manifest({"sweep": "unit"})
        payload = json.loads(open(path).read())
        assert payload["sweep"] == "unit"
        assert payload["code_version"] == code_version()
        assert payload["hits"] == 0

    def test_default_directory_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert RunCache().directory == str(tmp_path / "env-cache")

    def test_resolve_cache_cli_glue(self, tmp_path):
        assert resolve_cache(no_cache=True) is None
        cache = resolve_cache(cache_dir=str(tmp_path))
        assert cache is not None and cache.directory == str(tmp_path)


class TestPeekTupleIds:
    def test_peek_does_not_consume(self):
        reset_tuple_ids()
        assert peek_next_tuple_ids() == 0
        minted = StreamTuple(
            stream=StreamId.R, key=1, origin_node=0, arrival_index=0
        )
        assert minted.tuple_id == 0
        assert peek_next_tuple_ids() == 1
        reset_tuple_ids()
