"""Unit tests for the regression comparator."""

import dataclasses

import pytest

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.experiments.regression import RegressionReport, compare, run_key


def make_result(seed=1, algorithm="DFTT", reported=850):
    return RunResult(
        config={
            "algorithm": algorithm,
            "num_nodes": 4,
            "window_size": 128,
            "kappa": 16.0,
            "workload": "ZIPF",
            "total_tuples": 2000,
            "seed": seed,
        },
        truth_pairs=1000,
        reported_pairs=reported,
        duplicate_reports=0,
        spurious_reports=0,
        tuples_arrived=2000,
        duration_seconds=10.0,
        arrival_span_seconds=9.0,
        traffic={"summary_overhead_fraction": 0.05},
        messages_by_kind={"tuple": 4000},
    )


def test_identical_results_pass():
    report = compare([make_result()], [make_result()])
    assert report.passed
    assert all(drift.within_tolerance for drift in report.drifts)


def test_drift_beyond_tolerance_flags_regression():
    baseline = make_result(reported=850)
    worse = make_result(reported=600)  # epsilon 0.15 -> 0.40
    report = compare([baseline], [worse], tolerance=0.10)
    assert not report.passed
    metrics = {drift.metric for drift in report.regressions}
    assert "epsilon" in metrics


def test_drift_within_tolerance_passes():
    report = compare([make_result(reported=850)], [make_result(reported=845)])
    assert report.passed


def test_unmatched_runs_reported():
    report = compare([make_result(seed=1)], [make_result(seed=2)])
    assert not report.passed
    assert len(report.unmatched_baseline) == 1
    assert len(report.unmatched_candidate) == 1


def test_duplicate_baseline_rejected():
    with pytest.raises(ConfigurationError):
        compare([make_result(), make_result()], [])


def test_negative_tolerance_rejected():
    with pytest.raises(ConfigurationError):
        compare([], [], tolerance=-0.1)


def test_run_key_uses_identifying_fields():
    a, b = make_result(seed=1), make_result(seed=1, algorithm="BLOOM")
    assert run_key(a) != run_key(b)
    assert run_key(a) == run_key(make_result(seed=1))


def test_format_renders_table():
    report = compare([make_result()], [make_result(reported=500)])
    text = report.format()
    assert "epsilon" in text
    assert "regression(s)" in text


def test_round_trip_with_persistence(tmp_path):
    from repro.experiments.persistence import load_results, save_results

    path = tmp_path / "baseline.json"
    save_results([make_result()], path)
    report = compare(load_results(path), [make_result()])
    assert report.passed
