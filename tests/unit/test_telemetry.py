"""Unit tests for the telemetry registry, hub, and settings."""

import pytest

from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.telemetry import (
    TelemetryHub,
    TelemetrySettings,
    hub_if,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
    format_labels,
    label_set,
)


class TestLabels:
    def test_label_set_is_sorted_and_stringified(self):
        assert label_set({"stream": "R", "node": 3}) == (
            ("node", "3"),
            ("stream", "R"),
        )

    def test_label_order_does_not_matter(self):
        assert label_set({"a": 1, "b": 2}) == label_set({"b": 2, "a": 1})

    def test_format_labels(self):
        assert format_labels(label_set({"node": 3, "stream": "R"})) == (
            "node=3;stream=R"
        )
        assert format_labels(()) == ""


class TestTimeSeries:
    def test_ring_buffer_drops_oldest(self):
        series = TimeSeries(3)
        for tick in range(5):
            series.append(float(tick), float(tick * 10))
        assert list(series) == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert len(series) == 3
        assert series.dropped == 2
        assert series.last() == (4.0, 40.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            TimeSeries(0)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c", ())
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.sample_value() == 3.5

    def test_gauge_is_point_in_time(self):
        gauge = Gauge("g", ())
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_histogram_buckets(self):
        histogram = Histogram("h", (), edges=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(105.0)
        assert histogram.sample_value() == 4.0

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", (), edges=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", (), edges=())


class TestMetricRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricRegistry()
        first = registry.counter("repro_x_total", node=1)
        second = registry.counter("repro_x_total", node=1)
        other = registry.counter("repro_x_total", node=2)
        assert first is second
        assert first is not other
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total")

    def test_instruments_are_deterministically_ordered(self):
        registry = MetricRegistry()
        registry.counter("b_total", node=2)
        registry.counter("a_total")
        registry.counter("b_total", node=1)
        names = [
            (instrument.name, instrument.labels)
            for instrument in registry.instruments()
        ]
        assert names == sorted(names)

    def test_sample_appends_to_every_series(self):
        registry = MetricRegistry(series_capacity=8)
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        counter.inc(3)
        gauge.set(5)
        registry.sample(1.0)
        counter.inc(2)
        registry.sample(2.0)
        assert registry.samples_taken == 2
        assert list(counter.series) == [(1.0, 3.0), (2.0, 5.0)]
        assert list(gauge.series) == [(1.0, 5.0), (2.0, 5.0)]
        rows = list(registry.series_rows())
        assert ("c_total", "", 1.0, 3.0) in rows
        assert ("g", "", 2.0, 5.0) in rows

    def test_get_returns_none_for_missing(self):
        registry = MetricRegistry()
        assert registry.get("absent") is None


def _message(kind=MessageKind.TUPLE, entries=0, created_at=None):
    return Message(
        kind=kind,
        source=0,
        destination=1,
        summary_entries=entries,
        created_at=created_at,
    )


class TestTelemetryHub:
    def test_emit_timestamps_with_clock(self):
        moments = [4.0]
        hub = TelemetryHub(clock=lambda: moments[0])
        hub.emit("a", category="test")
        moments[0] = 9.0
        hub.emit("b", category="test", time=7.5, node=2, dur_s=0.25, extra=1)
        events = list(hub.events())
        assert [event.time for event in events] == [4.0, 7.5]
        assert [event.seq for event in events] == [0, 1]
        assert events[1].node == 2
        assert events[1].dur_s == 0.25
        assert events[1].attrs == {"extra": 1}

    def test_event_ring_drops_oldest(self):
        settings = TelemetrySettings(enabled=True, event_capacity=4)
        hub = TelemetryHub(settings)
        for index in range(6):
            hub.emit("e%d" % index, category="test")
        assert hub.events_emitted == 6
        assert len(hub) == 4
        assert hub.events_dropped == 2
        assert next(iter(hub.events())).name == "e2"
        # The category counter saw every emission, not just retained ones.
        assert hub.registry.get("repro_events_total", category="test").value == 6

    def test_message_accounting(self):
        hub = TelemetryHub()
        hub.on_message_send(1.0, _message(entries=3))
        hub.on_message_send(1.5, _message(kind=MessageKind.SUMMARY))
        hub.on_message_deliver(2.0, _message(created_at=1.0))
        hub.on_message_drop(2.5, _message())
        registry = hub.registry
        assert registry.get("repro_net_messages_total", kind="tuple").value == 1
        assert registry.get("repro_net_messages_total", kind="summary").value == 1
        assert registry.get("repro_net_delivered_total", kind="tuple").value == 1
        assert registry.get("repro_net_lost_total", kind="tuple").value == 1
        assert registry.get("repro_link_messages_total", src=0, dst=1).value == 2
        transit = registry.get("repro_net_transit_seconds", kind="tuple")
        assert transit.count == 1
        assert transit.total == pytest.approx(1.0)
        names = [event.name for event in hub.events()]
        assert names == ["net.send", "net.send", "net.deliver", "net.drop"]

    def test_trace_messages_off_accounts_without_events(self):
        settings = TelemetrySettings(enabled=True, trace_messages=False)
        hub = TelemetryHub(settings)
        assert hub.message_trace is None
        hub.on_message_send(1.0, _message())
        assert hub.registry.get("repro_net_messages_total", kind="tuple").value == 1
        assert len(hub) == 0

    def test_sample_tick_runs_samplers_then_snapshots(self):
        hub = TelemetryHub(clock=lambda: 3.0)
        seen = []

        def sampler(now, registry):
            seen.append(now)
            registry.gauge("repro_probe").set(42)

        hub.add_sampler(sampler)
        hub.sample_tick()
        assert seen == [3.0]
        probe = hub.registry.get("repro_probe")
        assert list(probe.series) == [(3.0, 42.0)]

    def test_summary_totals(self):
        hub = TelemetryHub(clock=lambda: 0.0)
        hub.emit("a", category="net")
        hub.emit("b", category="net")
        hub.emit("c", category="node")
        hub.sample_tick(1.0)
        summary = hub.summary()
        assert summary["events_emitted"] == 3.0
        assert summary["events_dropped"] == 0.0
        assert summary["samples_taken"] == 1.0
        assert summary["events_net"] == 2.0
        assert summary["events_node"] == 1.0
        assert hub.counts_by_category() == {"net": 2, "node": 1}

    def test_hub_if(self):
        assert hub_if(False) is None
        assert isinstance(hub_if(True), TelemetryHub)


class TestTelemetrySettings:
    def test_defaults_are_disabled(self):
        settings = TelemetrySettings()
        assert not settings.enabled
        settings.validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sample_interval_s=0.0),
            dict(sample_margin_s=-1.0),
            dict(event_capacity=0),
            dict(series_capacity=0),
            dict(trace_capacity=0),
            dict(dashboard_interval_s=0.0),
        ],
    )
    def test_validate_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            TelemetrySettings(enabled=True, **kwargs).validate()


class TestSparkline:
    def test_scales_to_the_window_min_max(self):
        from repro.telemetry.dashboard import SPARK_LEVELS, sparkline

        strip = sparkline([0.0, 5.0, 10.0])
        assert len(strip) == 3
        assert strip[0] == SPARK_LEVELS[0]
        assert strip[-1] == SPARK_LEVELS[-1]
        assert strip[1] not in (SPARK_LEVELS[0], SPARK_LEVELS[-1])

    def test_flat_and_empty_series(self):
        from repro.telemetry.dashboard import SPARK_LEVELS, sparkline

        assert sparkline([]) == ""
        assert sparkline([3.0, 3.0, 3.0]) == SPARK_LEVELS[0] * 3

    def test_window_keeps_only_the_tail(self):
        from repro.telemetry.dashboard import sparkline

        assert len(sparkline(range(100), width=10)) == 10
