"""Unit tests for ASCII result rendering."""

from repro.experiments.reporting import format_series, format_table


def test_table_alignment_and_header_rule():
    text = format_table(["name", "value"], [("a", 1), ("long-name", 2.5)])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4
    widths = [len(line) for line in lines]
    assert max(widths[2:]) <= len(lines[1])


def test_float_formatting():
    text = format_table(["x"], [(0.123456,), (1234567.0,), (float("nan"),), (float("inf"),)])
    assert "0.1235" in text
    assert "e+06" in text
    assert "nan" in text
    assert "inf" in text


def test_bool_formatting():
    text = format_table(["ok"], [(True,), (False,)])
    assert "yes" in text and "no" in text


def test_tiny_floats_use_scientific():
    assert "e-05" in format_table(["x"], [(1.5e-5,)])


def test_series_rendering():
    text = format_series("DFTT", [(2, 0.1), (4, 0.2)])
    assert text == "DFTT: (2, 0.1) (4, 0.2)"


def test_empty_rows():
    text = format_table(["a", "b"], [])
    assert len(text.splitlines()) == 2
