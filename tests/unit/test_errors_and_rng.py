"""Unit tests for the exception hierarchy and RNG plumbing."""

import numpy as np
import pytest

from repro._rng import child, ensure_rng, spawn
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    ReproError,
    SimulationError,
    SummaryError,
    WindowError,
)


class TestErrors:
    @pytest.mark.parametrize(
        "error",
        [ConfigurationError, SimulationError, WindowError, SummaryError, CalibrationError],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)


class TestRng:
    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(5)
        assert ensure_rng(generator) is generator

    def test_ensure_rng_from_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_ensure_rng_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_children_are_independent_and_deterministic(self):
        first = [g.integers(0, 10**6) for g in spawn(ensure_rng(7), 3)]
        second = [g.integers(0, 10**6) for g in spawn(ensure_rng(7), 3)]
        assert first == second
        assert len(set(first)) > 1  # children differ from each other

    def test_spawn_zero_children(self):
        assert spawn(ensure_rng(1), 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(1), -1)

    def test_child_is_single_spawn(self):
        a = child(ensure_rng(9)).integers(0, 10**6)
        b = spawn(ensure_rng(9), 1)[0].integers(0, 10**6)
        assert a == b

    def test_spawned_children_do_not_affect_parent_stream(self):
        parent_a = ensure_rng(11)
        spawn(parent_a, 4)
        after_spawn = parent_a.integers(0, 10**6)
        parent_b = ensure_rng(11)
        spawn(parent_b, 4)
        assert after_spawn == parent_b.integers(0, 10**6)
