"""Unit tests for the chaos-sweep experiment layer (no simulation)."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments.chaos import (
    CHAOS_FORMAT_VERSION,
    ChaosLevel,
    ChaosRow,
    DEFAULT_GRID,
    build_fault_plan,
    figure,
    format_result,
    grid_to_spec,
    level_order,
    parse_grid,
    rows_from_json,
    rows_from_payload,
    rows_to_json,
    rows_to_payload,
    worst_case_seconds,
)
from repro.experiments.harness import get_scale
from repro.experiments.regression import compare_chaos
from repro.net.faults import FaultKind
from repro.telemetry.events import TelemetryEvent


def make_row(**overrides):
    base = dict(
        scale="smoke",
        algorithm="DFTT",
        num_nodes=4,
        seed=2007,
        level="storm",
        loss_probability=0.4,
        partition_s=2.0,
        crash_count=1,
        fault_events=3,
        epsilon=0.21,
        truth_pairs=1000,
        reported_pairs=790,
        total_bytes=320_000.0,
        bytes_lost=91_000.0,
        data_messages=4000,
        messages_blocked=1179.0,
        local_arrivals_dropped=89.0,
        failures_detected=7.0,
        recoveries=7.0,
        recovery_latency_mean_s=0.65,
        recovery_latency_max_s=1.4,
        resyncs=7.0,
        worst_case_s=3.5,
        duration_seconds=9.1,
        recovery_enabled=False,
        restarts=0.0,
        tuples_replayed=0.0,
        rejoin_latency_s=0.0,
        dead_letters=0.0,
    )
    base.update(overrides)
    return ChaosRow(**base)


class TestChaosLevel:
    def test_parse_bare_name_is_clean(self):
        level = ChaosLevel.parse("clean")
        assert level.clean
        assert level.name == "clean"

    def test_parse_full_spec(self):
        level = ChaosLevel.parse("storm@loss=0.4,part=2s,crash=1")
        assert level == ChaosLevel("storm", 0.4, 2.0, 1)

    def test_spec_round_trip(self):
        for level in DEFAULT_GRID + (ChaosLevel("x", 0.125, 3.75, 2),):
            assert ChaosLevel.parse(level.to_spec()) == level

    def test_grid_round_trip(self):
        assert parse_grid(grid_to_spec(DEFAULT_GRID)) == DEFAULT_GRID

    def test_intensity_orders_default_grid(self):
        intensities = [level.intensity for level in DEFAULT_GRID]
        assert intensities == sorted(intensities)

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "storm@loss",  # missing '='
            "storm@loss=high",  # unparsable number
            "storm@wind=3",  # unknown knob
            "storm@loss=1.5",  # probability out of range
            "storm@part=-1",  # negative duration
            "storm@crash=-1",  # negative count
            "bad name@loss=0.1",  # name must be a bare word
        ],
    )
    def test_invalid_levels_raise(self, spec):
        with pytest.raises(ConfigurationError):
            ChaosLevel.parse(spec)

    def test_grid_rejects_duplicates_and_emptiness(self):
        with pytest.raises(ConfigurationError):
            parse_grid("clean; clean")
        with pytest.raises(ConfigurationError):
            parse_grid(" ; ")

    def test_parse_overload_knob(self):
        level = ChaosLevel.parse("surge@over=8")
        assert level.overload_factor == 8.0
        assert not level.clean
        assert ChaosLevel.parse(level.to_spec()) == level

    def test_overload_knob_composes_with_others(self):
        level = ChaosLevel.parse("storm@loss=0.2,over=4,crash=1")
        assert level == ChaosLevel("storm", 0.2, 0.0, 1, overload_factor=4.0)
        assert ChaosLevel.parse(level.to_spec()) == level

    @pytest.mark.parametrize(
        "spec",
        [
            "surge@over=1",  # factor must exceed 1
            "surge@over=0.5",  # sub-unit slowdown
            "surge@over=-2",  # negative factor
            "surge@over=slow",  # unparsable number
        ],
    )
    def test_invalid_overload_factor_raises(self, spec):
        with pytest.raises(ConfigurationError):
            ChaosLevel.parse(spec)

    def test_overload_raises_intensity(self):
        assert (
            ChaosLevel.parse("surge@over=8").intensity
            > ChaosLevel.parse("clean").intensity
        )


class TestFaultPlanBuilder:
    def test_clean_level_builds_empty_plan(self):
        plan = build_fault_plan(ChaosLevel("clean"), get_scale("smoke"), 4)
        assert plan.empty

    def test_severe_level_builds_all_three_classes(self):
        scale = get_scale("smoke")
        plan = build_fault_plan(
            ChaosLevel("severe", 0.45, 3.0, 1), scale, 4
        )
        kinds = {event.kind for event in plan.events}
        assert kinds == {
            FaultKind.LOSS_BURST,
            FaultKind.PARTITION,
            FaultKind.NODE_CRASH,
        }
        span = scale.total_tuples / scale.arrival_rate
        for event in plan.events:
            assert 0 <= event.start_s < span
        crash = next(e for e in plan.events if e.kind is FaultKind.NODE_CRASH)
        assert crash.nodes == (3,)  # highest id first

    def test_crashes_staggered_over_distinct_nodes(self):
        plan = build_fault_plan(
            ChaosLevel("meltdown", crash_count=3), get_scale("smoke"), 8
        )
        crashes = [e for e in plan.events if e.kind is FaultKind.NODE_CRASH]
        assert [e.nodes for e in crashes] == [(7,), (6,), (5,)]
        starts = [e.start_s for e in crashes]
        assert starts == sorted(starts) and len(set(starts)) == 3

    def test_partition_duration_capped_to_half_span(self):
        scale = get_scale("smoke")
        span = scale.total_tuples / scale.arrival_rate
        plan = build_fault_plan(ChaosLevel("split", partition_s=10_000.0), scale, 4)
        (partition,) = plan.events
        assert partition.duration_s <= 0.5 * span + 1e-9

    def test_overload_level_builds_overload_event_on_node_zero(self):
        scale = get_scale("smoke")
        plan = build_fault_plan(ChaosLevel("surge", overload_factor=8.0), scale, 4)
        (event,) = plan.events
        assert event.kind is FaultKind.OVERLOAD
        assert event.nodes == (0,)  # crashes target the highest ids
        assert event.slowdown_factor == 8.0
        span = scale.total_tuples / scale.arrival_rate
        assert event.start_s == pytest.approx(0.25 * span, rel=1e-4)
        assert event.duration_s == pytest.approx(0.50 * span, rel=1e-4)

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ConfigurationError):
            build_fault_plan(ChaosLevel("boom", crash_count=4), get_scale("smoke"), 4)

    def test_plans_are_deterministic(self):
        scale = get_scale("bench")
        level = ChaosLevel("storm", 0.3, 2.0, 1)
        assert build_fault_plan(level, scale, 8) == build_fault_plan(level, scale, 8)

    def test_restartable_plan_keeps_the_same_outage_window(self):
        scale = get_scale("smoke")
        level = ChaosLevel("storm", 0.3, 2.0, 1)
        legacy = build_fault_plan(level, scale, 8)
        restartable = build_fault_plan(level, scale, 8, restartable=True)
        for before, after in zip(legacy.events, restartable.events):
            if after.kind is FaultKind.NODE_CRASH:
                assert after.restartable
                assert after.downtime_s == before.duration_s
                assert after.end_s == before.end_s
            else:
                assert after == before


class TestRecoveryComparison:
    def test_common_truth_reclaims_epsilon(self):
        from repro.experiments.chaos import format_recovery_comparison

        # Legacy crash: truth shrank to 500 alongside the report, so the
        # raw epsilon (0.1) flatters it.  Scored against the recovered
        # run's fuller truth of 1000, the gap is honest: 0.55 vs 0.2.
        baseline = [
            make_row(truth_pairs=500, reported_pairs=450, epsilon=0.1),
            make_row(level="clean", crash_count=0, epsilon=0.01),
        ]
        recovered = [
            make_row(
                truth_pairs=1000,
                reported_pairs=800,
                epsilon=0.2,
                recovery_enabled=True,
                restarts=1.0,
                tuples_replayed=120.0,
                rejoin_latency_s=0.3,
            ),
            make_row(level="clean", crash_count=0, recovery_enabled=True),
        ]
        table = format_recovery_comparison(baseline, recovered)
        assert "0.55" in table and "0.2" in table and "0.35" in table
        assert "clean" not in table  # crash-free cells have nothing to reclaim

    def test_unpaired_rows_are_skipped(self):
        from repro.experiments.chaos import format_recovery_comparison

        table = format_recovery_comparison([make_row()], [])
        assert "no crash cells" in table


def worst_case_event(time, node, stream, active):
    return TelemetryEvent(
        seq=0,
        time=time,
        name="policy.worst_case_mode",
        category="policy",
        node=node,
        attrs={"stream": stream, "active": active},
    )


class TestWorstCaseSeconds:
    def test_closed_intervals_sum(self):
        events = [
            worst_case_event(1.0, 0, "R", True),
            worst_case_event(3.0, 0, "R", False),
            worst_case_event(4.0, 1, "S", True),
            worst_case_event(4.5, 1, "S", False),
        ]
        assert worst_case_seconds(events, end_time=10.0) == pytest.approx(2.5)

    def test_open_interval_closed_at_end(self):
        events = [worst_case_event(6.0, 0, "R", True)]
        assert worst_case_seconds(events, end_time=10.0) == pytest.approx(4.0)

    def test_streams_and_nodes_tracked_independently(self):
        events = [
            worst_case_event(0.0, 0, "R", True),
            worst_case_event(0.0, 0, "S", True),
            worst_case_event(1.0, 0, "R", False),
        ]
        assert worst_case_seconds(events, end_time=2.0) == pytest.approx(3.0)

    def test_unrelated_events_ignored(self):
        other = TelemetryEvent(
            seq=0, time=1.0, name="health.suspected", category="health"
        )
        assert worst_case_seconds([other], end_time=5.0) == 0.0

    def test_duplicate_activation_does_not_restart_interval(self):
        events = [
            worst_case_event(1.0, 0, "R", True),
            worst_case_event(2.0, 0, "R", True),
            worst_case_event(3.0, 0, "R", False),
        ]
        assert worst_case_seconds(events, end_time=10.0) == pytest.approx(2.0)


class TestRowSerialization:
    def test_round_trip(self):
        rows = [make_row(), make_row(level="clean", epsilon=0.07)]
        assert rows_from_json(rows_to_json(rows)) == rows

    def test_canonical_json_is_stable(self):
        rows = [make_row()]
        assert rows_to_json(rows) == rows_to_json(list(rows))
        assert rows_to_json(rows).endswith("\n")

    def test_version_mismatch_rejected(self):
        payload = rows_to_payload([make_row()])
        payload["format_version"] = CHAOS_FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError):
            rows_from_payload(payload)

    def test_unknown_row_field_rejected(self):
        payload = rows_to_payload([make_row()])
        payload["rows"][0]["surprise"] = 1
        with pytest.raises(ConfigurationError):
            rows_from_payload(payload)

    def test_missing_row_field_rejected(self):
        payload = rows_to_payload([make_row()])
        del payload["rows"][0]["epsilon"]
        with pytest.raises(ConfigurationError):
            rows_from_payload(payload)

    def test_unknown_top_level_key_rejected(self):
        payload = rows_to_payload([make_row()])
        payload["extra"] = True
        with pytest.raises(ConfigurationError):
            rows_from_payload(payload)

    def test_non_object_json_rejected(self):
        with pytest.raises(ConfigurationError):
            rows_from_json("[]")
        with pytest.raises(ConfigurationError):
            rows_from_json("not json")


class TestRendering:
    def rows(self):
        return [
            make_row(algorithm="DFTT", level="clean", epsilon=0.05, bytes_lost=0.0),
            make_row(algorithm="DFTT", level="storm", epsilon=0.2),
            make_row(algorithm="BASE", level="clean", epsilon=0.0, bytes_lost=0.0),
            make_row(algorithm="BASE", level="storm", epsilon=0.12),
        ]

    def test_table_lists_every_cell(self):
        table = format_result(self.rows())
        assert "DFTT" in table and "BASE" in table
        assert "clean" in table and "storm" in table
        assert "worst-case s" in table

    def test_level_order_is_first_appearance(self):
        assert level_order(self.rows()) == ["clean", "storm"]

    def test_figure_contains_both_panels(self):
        chart = figure(self.rows())
        assert "epsilon vs fault level" in chart
        assert "0=clean" in chart and "1=storm" in chart
        assert "kB lost" in chart

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            figure([])


class TestChaosRegressionGate:
    def test_identical_rows_pass_with_zero_drift(self):
        rows = [make_row(), make_row(algorithm="BASE")]
        report = compare_chaos(rows, [make_row(), make_row(algorithm="BASE")])
        assert report.passed
        assert all(drift.relative_change == 0.0 for drift in report.drifts)

    def test_epsilon_drift_fails_the_gate(self):
        baseline = [make_row()]
        candidate = [make_row(epsilon=0.21 * 1.5)]
        report = compare_chaos(baseline, candidate, tolerance=0.15)
        assert not report.passed
        assert any(d.metric == "epsilon" for d in report.regressions)

    def test_missing_cell_fails_the_gate(self):
        baseline = [make_row(), make_row(level="clean")]
        report = compare_chaos(baseline, [make_row()])
        assert not report.passed
        assert len(report.unmatched_baseline) == 1

    def test_duplicate_baseline_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_chaos([make_row(), make_row()], [make_row()])

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_chaos([make_row()], [make_row()], tolerance=-0.1)
