"""Unit tests for spectral similarity measures."""

import numpy as np
import pytest

from repro.core.correlation import (
    SimilarityMeasure,
    distribution_similarity,
    max_lag_correlation,
    similarity,
    spectral_correlation_coefficient,
)
from repro.errors import SummaryError


def full_map(signal):
    spectrum = np.fft.fft(signal)
    half = len(signal) // 2 + 1
    return {k: complex(spectrum[k]) for k in range(half)}


class TestSpectralCoefficient:
    def test_identical_signals_have_rho_one(self):
        rng = np.random.default_rng(0)
        signal = rng.normal(size=64)
        mapping = full_map(signal)
        rho = spectral_correlation_coefficient(mapping, mapping, 64)
        assert rho == pytest.approx(1.0, abs=1e-9)

    def test_matches_time_domain_correlation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=64)
        y = 0.6 * x + 0.8 * rng.normal(size=64)
        rho = spectral_correlation_coefficient(full_map(x), full_map(y), 64)
        xc, yc = x - x.mean(), y - y.mean()
        expected = float(np.dot(xc, yc) / np.sqrt(np.dot(xc, xc) * np.dot(yc, yc)))
        assert rho == pytest.approx(max(0.0, expected), abs=1e-6)

    def test_anticorrelation_clipped_to_zero(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=32)
        assert spectral_correlation_coefficient(full_map(x), full_map(-x), 32) == 0.0

    def test_disjoint_bins_rejected(self):
        with pytest.raises(SummaryError):
            spectral_correlation_coefficient({1: 1j}, {2: 1j}, 8)

    def test_dc_only_maps_give_zero_when_centered(self):
        assert spectral_correlation_coefficient({0: 5 + 0j}, {0: 7 + 0j}, 8) == 0.0

    def test_truncated_maps_still_correlate_smooth_signals(self):
        n = np.arange(128)
        x = np.cos(2 * np.pi * 2 * n / 128) + 0.1 * np.cos(2 * np.pi * 40 * n / 128)
        truncated_x = {k: v for k, v in full_map(x).items() if k < 8}
        rho = spectral_correlation_coefficient(truncated_x, truncated_x, 128)
        assert rho == pytest.approx(1.0, abs=1e-9)


class TestMaxLagCorrelation:
    def test_shifted_signal_recovers_full_correlation(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=64)
        shifted = np.roll(base, 13)
        zero_lag = spectral_correlation_coefficient(full_map(base), full_map(shifted), 64)
        peak = max_lag_correlation(full_map(base), full_map(shifted), 64)
        assert peak == pytest.approx(1.0, abs=1e-6)
        assert peak > zero_lag

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=32), rng.normal(size=32)
        peak = max_lag_correlation(full_map(a), full_map(b), 32)
        assert 0.0 <= peak <= 1.0


class TestDistributionSimilarity:
    def test_same_distribution_scores_high(self):
        rng = np.random.default_rng(5)
        x = rng.integers(100, 200, size=128).astype(float)
        y = rng.integers(100, 200, size=128).astype(float)
        score = distribution_similarity(full_map(x), full_map(y), 128, domain=1000)
        assert score > 0.8

    def test_disjoint_ranges_score_low(self):
        rng = np.random.default_rng(6)
        x = rng.integers(1, 100, size=128).astype(float)
        y = rng.integers(900, 1000, size=128).astype(float)
        score = distribution_similarity(full_map(x), full_map(y), 128, domain=1000)
        assert score < 0.3

    def test_works_from_heavily_truncated_maps(self):
        rng = np.random.default_rng(7)
        x = rng.integers(1, 100, size=128).astype(float)
        y = rng.integers(900, 1000, size=128).astype(float)
        x_map = {k: v for k, v in full_map(x).items() if k < 4}
        y_map = {k: v for k, v in full_map(y).items() if k < 4}
        near = distribution_similarity(x_map, x_map, 128, domain=1000)
        far = distribution_similarity(x_map, y_map, 128, domain=1000)
        assert near > far

    def test_invalid_inputs(self):
        with pytest.raises(SummaryError):
            distribution_similarity({0: 1j}, {0: 1j}, 8, domain=0)
        with pytest.raises(SummaryError):
            distribution_similarity({0: 1j}, {0: 1j}, 8, domain=10, num_bins=0)


class TestDispatch:
    def test_each_measure_dispatches(self):
        rng = np.random.default_rng(8)
        mapping = full_map(rng.normal(size=32) + 100)
        for measure in SimilarityMeasure:
            value = similarity(measure, mapping, mapping, 32, domain=1000)
            assert 0.0 <= value <= 1.0

    def test_distribution_requires_domain(self):
        mapping = {0: 1 + 0j, 1: 2 + 0j}
        with pytest.raises(SummaryError):
            similarity(SimilarityMeasure.DISTRIBUTION, mapping, mapping, 8)
