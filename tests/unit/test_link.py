"""Unit tests for the WAN link model."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.link import Link, LinkSpec
from repro.net.message import Message, MessageKind
from repro.net.simulator import EventScheduler


def _tuple_message():
    return Message(kind=MessageKind.TUPLE, source=0, destination=1)


def _make_link(spec, delivered):
    scheduler = EventScheduler()
    link = Link(scheduler, spec, deliver=delivered.append, rng=np.random.default_rng(7))
    return scheduler, link


def test_default_spec_matches_paper():
    spec = LinkSpec()
    assert spec.bandwidth_bps == 90_000.0
    assert spec.latency_min_s == 0.020
    assert spec.latency_max_s == 0.100


def test_invalid_specs_rejected():
    with pytest.raises(ConfigurationError):
        LinkSpec(bandwidth_bps=0).validate()
    with pytest.raises(ConfigurationError):
        LinkSpec(latency_min_s=0.2, latency_max_s=0.1).validate()
    with pytest.raises(ConfigurationError):
        LinkSpec(latency_min_s=-0.1).validate()


def test_delivery_includes_transmission_and_latency():
    delivered = []
    spec = LinkSpec(latency_min_s=0.05, latency_max_s=0.05)
    scheduler, link = _make_link(spec, delivered)
    message = _tuple_message()
    expected_tx = message.size_bytes() * 8.0 / spec.bandwidth_bps
    arrival = link.send(message)
    assert arrival == pytest.approx(expected_tx + 0.05)
    scheduler.run()
    assert delivered == [message]
    assert scheduler.now == pytest.approx(arrival)


def test_fifo_serialization_backlog():
    delivered = []
    spec = LinkSpec(latency_min_s=0.0, latency_max_s=0.0)
    scheduler, link = _make_link(spec, delivered)
    first = _tuple_message()
    second = _tuple_message()
    t1 = link.send(first)
    t2 = link.send(second)
    tx = link.transmission_time(first)
    assert t1 == pytest.approx(tx)
    assert t2 == pytest.approx(2 * tx)
    assert link.queue_depth_seconds() == pytest.approx(2 * tx)
    scheduler.run()
    assert delivered == [first, second]


def test_backlog_bound_sheds_at_the_send_buffer():
    delivered = []
    dropped = []
    spec = LinkSpec(latency_min_s=0.0, latency_max_s=0.0)
    scheduler = EventScheduler()
    link = Link(
        scheduler,
        spec,
        deliver=delivered.append,
        rng=np.random.default_rng(7),
        on_drop=dropped.append,
    )
    first = _tuple_message()
    tx = link.transmission_time(first)
    link.backlog_bound_s = 1.5 * tx
    link.send(first)
    second = _tuple_message()
    link.send(second)  # backlog == tx < bound: still admitted
    third = _tuple_message()
    link.send(third)  # backlog == 2*tx >= bound: shed
    assert link.messages_shed == 1
    assert dropped == [third]
    scheduler.run()
    assert delivered == [first, second]
    # Shed messages count as losses with byte accounting.
    assert link.messages_lost == 1
    assert link.bytes_lost == third.size_bytes()


def test_backlog_bound_zero_keeps_unbounded_legacy_backlog():
    delivered = []
    spec = LinkSpec(latency_min_s=0.0, latency_max_s=0.0)
    scheduler, link = _make_link(spec, delivered)
    messages = [_tuple_message() for _ in range(50)]
    for message in messages:
        link.send(message)
    assert link.messages_shed == 0
    scheduler.run()
    assert delivered == messages


def test_shedding_does_not_perturb_the_latency_stream():
    """A bounded link's jitter draws are a pure function of the messages
    that actually occupy it -- shed sends consume no RNG."""
    spec = LinkSpec(latency_min_s=0.01, latency_max_s=0.2)

    def arrivals(extra_burst):
        delivered = []
        scheduler = EventScheduler()
        link = Link(
            scheduler, spec, deliver=delivered.append, rng=np.random.default_rng(7)
        )
        first = _tuple_message()
        link.backlog_bound_s = 1.5 * link.transmission_time(first)
        times = [link.send(first), link.send(_tuple_message())]
        if extra_burst:
            for _ in range(5):
                link.send(_tuple_message())  # all shed at the bound
        scheduler.run()
        return times

    burst = arrivals(extra_burst=True)
    quiet = arrivals(extra_burst=False)
    assert burst == quiet


def test_latency_sampled_within_range():
    delivered = []
    spec = LinkSpec(latency_min_s=0.02, latency_max_s=0.1)
    scheduler, link = _make_link(spec, delivered)
    tx = link.transmission_time(_tuple_message())
    free_at = 0.0
    for _ in range(50):
        message = _tuple_message()
        arrival = link.send(message)
        free_at += tx
        latency = arrival - free_at
        # FIFO ordering can only delay beyond the sampled latency.
        assert latency >= 0.02 - 1e-12
    scheduler.run()
    assert len(delivered) == 50


def test_order_preserved_end_to_end():
    delivered = []
    spec = LinkSpec(latency_min_s=0.0, latency_max_s=0.5, preserve_order=True)
    scheduler, link = _make_link(spec, delivered)
    messages = [_tuple_message() for _ in range(30)]
    for message in messages:
        link.send(message)
    scheduler.run()
    assert delivered == messages


def test_infinite_bandwidth_means_zero_serialization():
    delivered = []
    spec = LinkSpec(bandwidth_bps=math.inf, latency_min_s=0.03, latency_max_s=0.03)
    scheduler, link = _make_link(spec, delivered)
    arrival = link.send(_tuple_message())
    assert arrival == pytest.approx(0.03)


def test_counters_accumulate():
    delivered = []
    scheduler, link = _make_link(LinkSpec(), delivered)
    total = 0
    for _ in range(4):
        message = _tuple_message()
        total += message.size_bytes()
        link.send(message)
    assert link.messages_sent == 4
    assert link.bytes_sent == total
    assert link.busy_seconds == pytest.approx(total * 8.0 / 90_000.0)
