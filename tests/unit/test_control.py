"""Unit tests for the recomputation control vector."""

import pytest

from repro.dft.control import ControlVector
from repro.errors import ConfigurationError


def test_validation():
    with pytest.raises(ConfigurationError):
        ControlVector(recompute_interval=0)
    with pytest.raises(ConfigurationError):
        ControlVector(recompute_interval=1, reduction_factor=0.5)
    with pytest.raises(ConfigurationError):
        ControlVector(recompute_interval=1, completion_probability=1.0)
    with pytest.raises(ConfigurationError):
        ControlVector(recompute_interval=1, drift_bound=0.0)


def test_default_targets_paper_operating_point():
    vector = ControlVector.default(1024)
    assert vector.reduction_factor == 10.0
    assert vector.completion_probability == 0.95
    # interval = 10 * log2(1024) = 100
    assert vector.recompute_interval == 100


def test_default_interval_grows_with_window():
    small = ControlVector.default(64)
    large = ControlVector.default(2**16)
    assert large.recompute_interval > small.recompute_interval


def test_default_tiny_window():
    vector = ControlVector.default(1)
    assert vector.recompute_interval >= 1


def test_should_recompute_threshold():
    vector = ControlVector(recompute_interval=5)
    assert not vector.should_recompute(4)
    assert vector.should_recompute(5)
    assert vector.should_recompute(6)


def test_drift_safe_interval_binds():
    vector = ControlVector(
        recompute_interval=10**9, drift_bound=1e-14, unit_roundoff=1e-16
    )
    assert vector.drift_safe_interval() == 100
    assert vector.should_recompute(100)
    assert not vector.should_recompute(99)


def test_expected_drift_grows_with_updates():
    vector = ControlVector(recompute_interval=100)
    assert vector.expected_drift(0) == 0.0
    assert vector.expected_drift(100) > vector.expected_drift(10)


def test_meets_completion_probability():
    vector = ControlVector(recompute_interval=100, drift_bound=1e-9)
    assert vector.meets_completion_probability(100)
    # Astronomical update counts eventually violate the bound.
    assert not vector.meets_completion_probability(10**16)
