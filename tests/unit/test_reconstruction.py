"""Unit tests for truncated-inverse-DFT reconstruction."""

import numpy as np
import pytest

from repro.dft.reconstruction import (
    TruncationMode,
    coefficient_budget,
    compress_spectrum,
    expand_spectrum,
    lossless_fraction,
    reconstruct_values,
    reconstructed_key_set,
    reconstruction_squared_errors,
)
from repro.errors import SummaryError


def smooth_signal(length=256, seed=0, tick=0.5):
    """A random-walk integer signal (the stock-data smoothness class)."""
    rng = np.random.default_rng(seed)
    walk = np.cumsum(rng.normal(0, tick, size=length)) + 1000
    return np.rint(walk)


class TestCoefficientBudget:
    def test_budget_is_w_over_kappa(self):
        assert coefficient_budget(1024, 256) == 4
        assert coefficient_budget(1024, 4) == 256

    def test_budget_at_least_one(self):
        assert coefficient_budget(16, 256) == 1

    def test_invalid_inputs(self):
        with pytest.raises(SummaryError):
            coefficient_budget(0, 4)
        with pytest.raises(SummaryError):
            coefficient_budget(16, 0.5)


class TestCompressExpand:
    def test_low_frequency_keeps_first_bins(self):
        spectrum = np.fft.fft(smooth_signal(64))
        kept = compress_spectrum(spectrum, 5)
        assert sorted(kept) == [0, 1, 2, 3, 4]

    def test_largest_magnitude_keeps_heaviest(self):
        w = 64
        n = np.arange(w)
        signal = 10 * np.cos(2 * np.pi * 7 * n / w)
        kept = compress_spectrum(
            np.fft.fft(signal), 1, mode=TruncationMode.LARGEST_MAGNITUDE
        )
        assert list(kept) == [7]

    def test_expand_restores_conjugate_symmetry(self):
        spectrum = np.fft.fft(smooth_signal(32))
        kept = compress_spectrum(spectrum, 4)
        full = expand_spectrum(kept, 32)
        assert full[32 - 2] == pytest.approx(np.conj(full[2]))
        recovered = np.fft.ifft(full)
        assert np.abs(recovered.imag).max() < 1e-9

    def test_expand_rejects_out_of_range_bins(self):
        with pytest.raises(SummaryError):
            expand_spectrum({9: 1 + 0j}, 8)

    def test_full_budget_reproduces_signal_exactly(self):
        signal = smooth_signal(64)
        spectrum = np.fft.fft(signal)
        kept = compress_spectrum(spectrum, 33)  # all non-redundant bins of W=64
        recovered = reconstruct_values(kept, 64, round_to_int=False)
        assert np.allclose(recovered, signal)


class TestReconstruction:
    def test_smooth_signal_reconstructs_losslessly_at_modest_budget(self):
        signal = smooth_signal(256)
        kept = compress_spectrum(np.fft.fft(signal), 96)
        recovered = reconstruct_values(kept, 256)
        assert np.mean(recovered == signal.astype(np.int64)) > 0.9

    def test_round_to_int_flag(self):
        signal = smooth_signal(64)
        kept = compress_spectrum(np.fft.fft(signal), 8)
        as_int = reconstruct_values(kept, 64)
        as_float = reconstruct_values(kept, 64, round_to_int=False)
        assert as_int.dtype == np.int64
        assert as_float.dtype == np.float64
        assert np.array_equal(as_int, np.rint(as_float).astype(np.int64))

    def test_key_set_contains_dominant_values(self):
        signal = np.full(32, 7.0)
        kept = compress_spectrum(np.fft.fft(signal), 2)
        assert reconstructed_key_set(kept, 32) == {7}

    def test_squared_errors_shrink_with_budget(self):
        signal = smooth_signal(128)
        small = reconstruction_squared_errors(signal, 4).mean()
        large = reconstruction_squared_errors(signal, 32).mean()
        assert large <= small

    def test_errors_are_parseval_consistent(self):
        signal = smooth_signal(128)
        errors = reconstruction_squared_errors(signal, 16)
        spectrum = np.fft.fft(signal)
        kept = compress_spectrum(spectrum, 16)
        kept_bins = set(kept) | {(128 - k) % 128 for k in kept}
        dropped = [k for k in range(128) if k not in kept_bins]
        expected_total = np.sum(np.abs(spectrum[dropped]) ** 2) / 128
        assert errors.sum() == pytest.approx(expected_total)

    def test_lossless_fraction_bounds(self):
        signal = smooth_signal(128)
        fraction = lossless_fraction(signal, 64)
        assert 0.0 <= fraction <= 1.0
        assert lossless_fraction(signal, 65) >= lossless_fraction(signal, 2) - 1e-12

    def test_invalid_signal_rejected(self):
        with pytest.raises(SummaryError):
            reconstruction_squared_errors([], 4)
        with pytest.raises(SummaryError):
            compress_spectrum(np.fft.fft(np.ones(8)), 0)
