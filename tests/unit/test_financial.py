"""Unit tests for the synthetic FIN workload."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.financial import (
    FinancialStreamConfig,
    financial_stream,
    financial_trades,
)


def _prices(count=4000, seed=11, **kwargs):
    config = FinancialStreamConfig(**kwargs) if kwargs else FinancialStreamConfig()
    stream = financial_stream(config, rng=np.random.default_rng(seed))
    return np.fromiter(itertools.islice(stream, count), dtype=np.float64)


def test_prices_stay_in_bounds():
    prices = _prices(min_price=100, max_price=200, initial_price=150, tick_std=30.0)
    assert prices.min() >= 100
    assert prices.max() <= 200


def test_prices_are_integers():
    config = FinancialStreamConfig()
    stream = financial_stream(config, rng=np.random.default_rng(0))
    for value in itertools.islice(stream, 100):
        assert isinstance(value, int)


def test_prices_are_strongly_autocorrelated():
    prices = _prices()
    centered = prices - prices.mean()
    lag1 = np.corrcoef(centered[:-1], centered[1:])[0, 1]
    assert lag1 > 0.95  # random walk: near-unit lag-1 autocorrelation


def test_low_frequency_energy_dominates():
    """The property Figures 5/6 rely on: spectral energy concentrates low."""
    prices = _prices(count=4096)
    spectrum = np.fft.fft(prices - prices.mean())
    energy = np.abs(spectrum) ** 2
    half = energy[1 : len(energy) // 2]
    low = half[: len(half) // 16].sum()
    assert low / half.sum() > 0.8


def test_config_validation():
    with pytest.raises(ConfigurationError):
        FinancialStreamConfig(initial_price=0).validate()
    with pytest.raises(ConfigurationError):
        FinancialStreamConfig(tick_std=0).validate()
    with pytest.raises(ConfigurationError):
        FinancialStreamConfig(mean_reversion=2.0).validate()
    with pytest.raises(ConfigurationError):
        FinancialStreamConfig(burst_probability=1.5).validate()


def test_trades_structure():
    trades = financial_trades(rng=np.random.default_rng(5))
    for price, size, side in itertools.islice(trades, 50):
        assert price >= 1
        assert size >= 1
        assert side in ("B", "S")


def test_determinism():
    assert np.array_equal(_prices(seed=42), _prices(seed=42))
