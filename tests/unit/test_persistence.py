"""Unit tests for result persistence."""

import pytest

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.experiments.persistence import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)


def make_result():
    return RunResult(
        config={"algorithm": "DFTT", "num_nodes": 4},
        truth_pairs=1000,
        reported_pairs=850,
        duplicate_reports=12,
        spurious_reports=3,
        tuples_arrived=5000,
        duration_seconds=21.5,
        arrival_span_seconds=20.0,
        traffic={"summary_bytes": 100.0, "summary_overhead_fraction": 0.02},
        messages_by_kind={"tuple": 9000, "summary": 100},
        node_diagnostics={0: {"tuples_processed": 2500.0}, 1: {"tuples_processed": 2500.0}},
        throughput_series=[(0, 40), (1, 42)],
        sustained_throughput=41.0,
    )


def test_round_trip_via_dict():
    original = make_result()
    restored = result_from_dict(result_to_dict(original))
    assert restored.epsilon == original.epsilon
    assert restored.messages_per_result_tuple == original.messages_per_result_tuple
    assert restored.node_diagnostics == original.node_diagnostics
    assert restored.throughput_series == original.throughput_series


def test_node_keys_restored_as_ints():
    restored = result_from_dict(result_to_dict(make_result()))
    assert set(restored.node_diagnostics) == {0, 1}


def test_save_and_load_file(tmp_path):
    path = tmp_path / "results.json"
    save_results([make_result(), make_result()], path)
    loaded = load_results(path)
    assert len(loaded) == 2
    assert loaded[0].truth_pairs == 1000


def test_missing_file_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        load_results(tmp_path / "absent.json")


def test_bad_version_rejected():
    payload = result_to_dict(make_result())
    payload["format_version"] = 99
    with pytest.raises(ConfigurationError):
        result_from_dict(payload)
