"""Unit tests for result persistence."""

import pytest

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.experiments.persistence import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)


def make_result(**overrides):
    fields = dict(
        config={"algorithm": "DFTT", "num_nodes": 4},
        truth_pairs=1000,
        reported_pairs=850,
        duplicate_reports=12,
        spurious_reports=3,
        tuples_arrived=5000,
        duration_seconds=21.5,
        arrival_span_seconds=20.0,
        traffic={"summary_bytes": 100.0, "summary_overhead_fraction": 0.02},
        messages_by_kind={"tuple": 9000, "summary": 100},
        node_diagnostics={0: {"tuples_processed": 2500.0}, 1: {"tuples_processed": 2500.0}},
        throughput_series=[(0, 40), (1, 42)],
        sustained_throughput=41.0,
    )
    fields.update(overrides)
    return RunResult(**fields)


def test_round_trip_via_dict():
    original = make_result()
    restored = result_from_dict(result_to_dict(original))
    assert restored.epsilon == original.epsilon
    assert restored.messages_per_result_tuple == original.messages_per_result_tuple
    assert restored.node_diagnostics == original.node_diagnostics
    assert restored.throughput_series == original.throughput_series


def test_node_keys_restored_as_ints():
    restored = result_from_dict(result_to_dict(make_result()))
    assert set(restored.node_diagnostics) == {0, 1}


def test_save_and_load_file(tmp_path):
    path = tmp_path / "results.json"
    save_results([make_result(), make_result()], path)
    loaded = load_results(path)
    assert len(loaded) == 2
    assert loaded[0].truth_pairs == 1000


def test_missing_file_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        load_results(tmp_path / "absent.json")


def test_bad_version_rejected():
    payload = result_to_dict(make_result())
    payload["format_version"] = 99
    with pytest.raises(ConfigurationError):
        result_from_dict(payload)


def make_faulted_result():
    """A run that saw injected faults and ran the recovery machinery."""
    return make_result(
        faults={
            "fault_events": 3.0,
            "messages_blocked": 746.0,
            "activations_loss_burst": 1.0,
            "activations_node_crash": 2.0,
            "local_arrivals_dropped": 89.0,
        },
        reliability={
            "retransmits": 41.0,
            "failures_detected": 7.0,
            "recoveries": 7.0,
            "recovery_latency_mean_s": 0.6542,
            "recovery_latency_max_s": 1.4,
            "resyncs": 7.0,
            "forced_broadcast_sends": 120.0,
        },
    )


def test_fault_fields_round_trip_exactly(tmp_path):
    original = make_faulted_result()
    restored = result_from_dict(result_to_dict(original))
    assert restored.faults == original.faults
    assert restored.reliability == original.reliability

    path = tmp_path / "faulted.json"
    save_results([original], path)
    (loaded,) = load_results(path)
    assert loaded.faults == original.faults
    assert loaded.reliability == original.reliability
    # The recovery metrics survive as floats, not strings.
    assert loaded.reliability["recovery_latency_mean_s"] == pytest.approx(0.6542)


def test_unknown_keys_fail_loudly():
    """A stale/foreign payload must raise, not silently drop fields."""
    payload = result_to_dict(make_result())
    payload["shiny_new_metric"] = 1.0
    with pytest.raises(ConfigurationError, match="shiny_new_metric"):
        result_from_dict(payload)


def test_missing_required_keys_fail_loudly():
    payload = result_to_dict(make_result())
    del payload["traffic"]
    with pytest.raises(ConfigurationError, match="traffic"):
        result_from_dict(payload)


def test_optional_legacy_keys_still_default():
    """Files written before per_query/latency/reliability/faults load fine."""
    payload = result_to_dict(make_result())
    for key in ("per_query", "latency", "reliability", "faults"):
        del payload[key]
    restored = result_from_dict(payload)
    assert restored.faults == {}
    assert restored.reliability == {}


def test_unknown_top_level_file_keys_fail_loudly(tmp_path):
    import json

    path = tmp_path / "stale.json"
    path.write_text(
        json.dumps(
            {"format_version": 1, "results": [], "bench_meta": {"host": "ci"}}
        )
    )
    with pytest.raises(ConfigurationError, match="bench_meta"):
        load_results(path)


def test_chaos_rows_save_and_load(tmp_path):
    from repro.experiments.chaos import rows_from_json
    from repro.experiments.persistence import load_chaos_rows, save_chaos_rows
    from tests.unit.test_chaos_experiment import make_row

    rows = [make_row(), make_row(level="clean", epsilon=0.03)]
    path = tmp_path / "chaos.json"
    save_chaos_rows(rows, path)
    assert load_chaos_rows(path) == rows
    assert rows_from_json(path.read_text()) == rows
    with pytest.raises(ConfigurationError):
        load_chaos_rows(tmp_path / "absent.json")
