"""Unit tests for message tracing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.link import LinkSpec
from repro.net.message import Message, MessageKind
from repro.net.simulator import EventScheduler
from repro.net.topology import Network
from repro.net.trace import MessageTrace


class Sink:
    def on_message(self, message):
        pass


def traced_network(capacity=100):
    scheduler = EventScheduler()
    network = Network(scheduler, spec=LinkSpec(), rng=np.random.default_rng(1))
    for node_id in (0, 1, 2):
        network.register(node_id, Sink())
    network.trace = MessageTrace(capacity=capacity)
    return scheduler, network


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        MessageTrace(capacity=0)


def test_records_every_send():
    _, network = traced_network()
    for destination in (1, 2, 1):
        network.send(Message(kind=MessageKind.TUPLE, source=0, destination=destination))
    assert len(network.trace) == 3
    records = list(network.trace)
    assert [r.destination for r in records] == [1, 2, 1]
    assert all(r.kind == "tuple" for r in records)


def test_ring_buffer_drops_oldest():
    _, network = traced_network(capacity=2)
    for index in range(5):
        network.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
    assert len(network.trace) == 2
    assert network.trace.dropped == 3
    assert network.trace.total_recorded == 5


def test_filtering():
    _, network = traced_network()
    network.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
    network.send(Message(kind=MessageKind.SUMMARY, source=1, destination=2, summary_entries=3))
    network.send(Message(kind=MessageKind.TUPLE, source=2, destination=0))
    assert len(network.trace.filter(source=0)) == 1
    assert len(network.trace.filter(kind=MessageKind.TUPLE)) == 2
    assert len(network.trace.filter(destination=2, kind=MessageKind.SUMMARY)) == 1
    assert network.trace.filter(source=9) == []


def test_counts_by_kind_and_tail():
    _, network = traced_network()
    for _ in range(4):
        network.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
    network.send(Message(kind=MessageKind.RESULT, source=1, destination=0))
    counts = network.trace.counts_by_kind()
    assert counts["tuple"] == 4
    assert counts["result"] == 1
    assert len(network.trace.tail(2)) == 2
    assert network.trace.tail(2)[-1].kind == "result"
    with pytest.raises(ConfigurationError):
        network.trace.tail(-1)


def test_untraced_network_has_no_overhead_path():
    scheduler = EventScheduler()
    network = Network(scheduler, rng=np.random.default_rng(2))
    network.register(0, Sink())
    network.register(1, Sink())
    network.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
    assert network.trace is None
