"""Unit tests for the reproduction-report CLI (cheap subsets only)."""

import pytest

from repro.experiments.report import ALL_EXPERIMENTS, main


def test_analytic_subset_runs(capsys):
    assert main(["smoke", "--only", "fig3,fig4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "Figure 4" in out
    assert "report complete" in out
    # Charts are rendered under the tables.
    assert "[y: epsilon]" in out


def test_table1_subset_runs(capsys):
    assert main(["smoke", "--only", "fig5,fig6"]) == 0
    out = capsys.readouterr().out
    assert "chosen kappa" in out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["smoke", "--only", "fig99"])


def test_unknown_scale_rejected():
    with pytest.raises(SystemExit):
        main(["cosmic"])


def test_experiment_registry_is_complete():
    assert set(ALL_EXPERIMENTS) == {
        "table1",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "chaos",
    }
