"""Unit tests for sliding windows."""

import pytest

from repro.errors import WindowError
from repro.streams.tuples import StreamId, StreamTuple
from repro.streams.window import CountWindow, LandmarkWindow, TimeWindow


def make_tuple(key, timestamp=None, index=0):
    return StreamTuple(
        stream=StreamId.R,
        key=key,
        origin_node=0,
        arrival_index=index,
        timestamp=timestamp,
    )


class TestCountWindow:
    def test_capacity_must_be_positive(self):
        with pytest.raises(WindowError):
            CountWindow(0)

    def test_append_until_full_evicts_nothing(self):
        window = CountWindow(3)
        for key in (1, 2, 3):
            assert window.append(make_tuple(key)) == []
        assert window.is_full
        assert len(window) == 3

    def test_eviction_is_fifo(self):
        window = CountWindow(2)
        first = make_tuple(1)
        window.append(first)
        window.append(make_tuple(2))
        evicted = window.append(make_tuple(3))
        assert evicted == [first]
        assert list(window.keys()) == [2, 3]

    def test_key_counts_track_multiplicity(self):
        window = CountWindow(4)
        for key in (7, 7, 8, 7):
            window.append(make_tuple(key))
        assert window.count(7) == 3
        assert window.count(8) == 1
        assert window.count(9) == 0
        assert 7 in window and 9 not in window

    def test_counts_decrease_on_eviction(self):
        window = CountWindow(2)
        window.append(make_tuple(5))
        window.append(make_tuple(5))
        window.append(make_tuple(6))
        assert window.count(5) == 1
        window.append(make_tuple(6))
        assert window.count(5) == 0
        assert 5 not in window.key_counts  # zero entries purged

    def test_matches_returns_exact_tuples(self):
        window = CountWindow(3)
        a, b, c = make_tuple(1), make_tuple(2), make_tuple(1)
        for item in (a, b, c):
            window.append(item)
        assert window.matches(1) == [a, c]
        assert window.matches(99) == []

    def test_total_appended_counts_everything(self):
        window = CountWindow(1)
        for key in range(5):
            window.append(make_tuple(key))
        assert window.total_appended == 5
        assert len(window) == 1


class TestTimeWindow:
    def test_span_must_be_positive(self):
        with pytest.raises(WindowError):
            TimeWindow(0.0)

    def test_requires_timestamps(self):
        window = TimeWindow(1.0)
        with pytest.raises(WindowError):
            window.append(make_tuple(1, timestamp=None))

    def test_expires_by_time(self):
        window = TimeWindow(1.0)
        window.append(make_tuple(1, timestamp=0.0))
        window.append(make_tuple(2, timestamp=0.5))
        evicted = window.append(make_tuple(3, timestamp=1.4))
        assert [t.key for t in evicted] == [1]
        assert sorted(window.keys()) == [2, 3]

    def test_advance_to_expires_without_insert(self):
        window = TimeWindow(1.0)
        window.append(make_tuple(1, timestamp=0.0))
        window.append(make_tuple(2, timestamp=0.9))
        evicted = window.advance_to(1.5)
        assert [t.key for t in evicted] == [1]
        assert len(window) == 1


class TestLandmarkWindow:
    def test_resets_on_landmark(self):
        window = LandmarkWindow(landmark_key=0)
        for key in (1, 2, 3):
            window.append(make_tuple(key))
        evicted = window.append(make_tuple(0))
        assert [t.key for t in evicted] == [1, 2, 3]
        assert list(window.keys()) == [0]
        assert window.resets == 1

    def test_max_size_bounds_growth(self):
        window = LandmarkWindow(landmark_key=0, max_size=2)
        for key in (1, 2, 3):
            window.append(make_tuple(key))
        assert len(window) == 2
        assert list(window.keys()) == [2, 3]
