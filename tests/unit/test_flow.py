"""Unit tests for the flow controller."""

import math

import pytest

from repro.core.flow import FlowController, FlowSettings
from repro.errors import ConfigurationError


class TestFlowSettings:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlowSettings(budget_fraction=1.5)
        with pytest.raises(ConfigurationError):
            FlowSettings(budget_override=-1)
        with pytest.raises(ConfigurationError):
            FlowSettings(uniform_variance_threshold=-1e-9)
        with pytest.raises(ConfigurationError):
            FlowSettings(minimum_similarity=2.0)

    def test_budget_interpolates_between_1_and_logn(self):
        n = 16
        assert FlowSettings(budget_fraction=0.0).budget(n) == 1.0
        assert FlowSettings(budget_fraction=1.0).budget(n) == pytest.approx(4.0)
        assert FlowSettings(budget_fraction=0.5).budget(n) == pytest.approx(2.5)

    def test_budget_override_wins(self):
        assert FlowSettings(budget_override=3.3).budget(16) == pytest.approx(3.3)

    def test_budget_capped_at_n_minus_1(self):
        assert FlowSettings(budget_override=100).budget(4) == 3.0

    def test_budget_requires_two_nodes(self):
        with pytest.raises(ConfigurationError):
            FlowSettings().budget(1)


class TestFlowController:
    def test_probabilities_meet_budget(self):
        controller = FlowController(9, FlowSettings(budget_override=2.0))
        similarities = {j: 0.1 + 0.1 * j for j in range(8)}
        probabilities = controller.probabilities(similarities)
        assert controller.expected_transmissions(probabilities) == pytest.approx(2.0, abs=1e-6)
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())

    def test_probabilities_proportional_below_cap(self):
        controller = FlowController(5, FlowSettings(budget_override=1.0))
        probabilities = controller.probabilities({1: 0.1, 2: 0.2, 3: 0.4})
        assert probabilities[2] == pytest.approx(2 * probabilities[1], rel=1e-6)
        assert probabilities[3] == pytest.approx(4 * probabilities[1], rel=1e-6)

    def test_saturation_waterfills(self):
        controller = FlowController(4, FlowSettings(budget_override=2.5))
        probabilities = controller.probabilities({1: 1.0, 2: 0.01, 3: 0.01})
        assert probabilities[1] == 1.0
        assert probabilities[2] == pytest.approx(0.75, abs=1e-6)
        assert controller.expected_transmissions(probabilities) == pytest.approx(2.5, abs=1e-6)

    def test_all_zero_similarities_spread_uniformly(self):
        controller = FlowController(5, FlowSettings(budget_override=2.0))
        probabilities = controller.probabilities({j: 0.0 for j in range(4)})
        assert all(p == pytest.approx(0.5) for p in probabilities.values())

    def test_budget_larger_than_peers_saturates_everyone(self):
        controller = FlowController(3, FlowSettings(budget_override=10.0))
        probabilities = controller.probabilities({1: 0.5, 2: 0.1})
        assert probabilities == {1: 1.0, 2: 1.0}

    def test_empty_similarities(self):
        controller = FlowController(3)
        assert controller.probabilities({}) == {}

    def test_minimum_similarity_floor(self):
        controller = FlowController(
            4, FlowSettings(budget_override=1.5, minimum_similarity=0.2)
        )
        probabilities = controller.probabilities({1: 0.0, 2: 0.0, 3: 1.0})
        assert probabilities[1] > 0.0

    def test_worst_case_detection_on_flat_similarities(self):
        controller = FlowController(5)
        flat = {j: 0.42 for j in range(4)}
        assert controller.is_uniform_worst_case(flat)
        assert controller.uniform_detections == 1

    def test_no_detection_on_varied_similarities(self):
        controller = FlowController(5)
        varied = {0: 0.9, 1: 0.1, 2: 0.5, 3: 0.2}
        assert not controller.is_uniform_worst_case(varied)

    def test_single_peer_never_flags_worst_case(self):
        controller = FlowController(2)
        assert not controller.is_uniform_worst_case({1: 0.3})

    def test_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            FlowController(1)

    def test_budget_property(self):
        controller = FlowController(8, FlowSettings(budget_fraction=1.0))
        assert controller.budget == pytest.approx(math.log2(8))
