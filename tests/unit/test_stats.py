"""Unit tests for traffic accounting."""

import pytest

from repro.net.message import Message, MessageKind
from repro.net.stats import TrafficStats


def _msg(kind, entries=0):
    return Message(kind=kind, source=0, destination=1, summary_entries=entries)


def test_empty_stats():
    stats = TrafficStats()
    assert stats.total_messages == 0
    assert stats.total_bytes == 0
    assert stats.summary_overhead_fraction() == 0.0


def test_record_splits_summary_and_net_bytes():
    stats = TrafficStats()
    message = _msg(MessageKind.TUPLE, entries=2)
    stats.record(message)
    assert stats.summary_bytes == message.summary_bytes()
    assert stats.net_data_bytes == message.size_bytes() - message.summary_bytes()
    assert stats.summary_entries == 2


def test_overhead_fraction():
    stats = TrafficStats()
    for _ in range(10):
        stats.record(_msg(MessageKind.TUPLE))
    stats.record(_msg(MessageKind.SUMMARY, entries=1))
    expected = stats.summary_bytes / stats.net_data_bytes
    assert stats.summary_overhead_fraction() == pytest.approx(expected)
    assert 0 < stats.summary_overhead_fraction() < 1


def test_data_messages_counts_tuples_and_summaries():
    stats = TrafficStats()
    stats.record(_msg(MessageKind.TUPLE))
    stats.record(_msg(MessageKind.SUMMARY, entries=1))
    stats.record(_msg(MessageKind.CONTROL))
    assert stats.data_messages() == 2
    assert stats.messages(MessageKind.CONTROL) == 1


def test_merge_folds_counters():
    left, right = TrafficStats(), TrafficStats()
    left.record(_msg(MessageKind.TUPLE, entries=1))
    right.record(_msg(MessageKind.SUMMARY, entries=3))
    left.merge(right)
    assert left.total_messages == 2
    assert left.summary_entries == 4


def test_as_dict_round_trip():
    stats = TrafficStats()
    stats.record(_msg(MessageKind.TUPLE, entries=1))
    snapshot = stats.as_dict()
    assert snapshot["total_messages"] == 1
    assert snapshot["summary_entries"] == 1
    assert snapshot["summary_overhead_fraction"] == pytest.approx(
        stats.summary_overhead_fraction()
    )
