"""Unit tests for trace replay."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams.replay import load_trace, replay_stream, trace_domain


def write_text_trace(tmp_path, lines, name="trace.txt"):
    path = tmp_path / name
    path.write_text("\n".join(lines))
    return path


class TestLoadTrace:
    def test_text_format(self, tmp_path):
        path = write_text_trace(tmp_path, ["1", "2", "  3  ", "", "# comment", "4 # inline"])
        assert load_trace(path).tolist() == [1, 2, 3, 4]

    def test_npy_format(self, tmp_path):
        path = tmp_path / "trace.npy"
        np.save(path, np.array([5, 6, 7]))
        assert load_trace(path).tolist() == [5, 6, 7]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trace(tmp_path / "nope.txt")

    def test_non_integer_line(self, tmp_path):
        path = write_text_trace(tmp_path, ["1", "banana"])
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_empty_trace(self, tmp_path):
        path = write_text_trace(tmp_path, ["# nothing"])
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_nonpositive_keys_rejected(self, tmp_path):
        path = write_text_trace(tmp_path, ["0", "1"])
        with pytest.raises(ConfigurationError):
            load_trace(path)


class TestReplayStream:
    def test_cycling(self, tmp_path):
        path = write_text_trace(tmp_path, ["1", "2", "3"])
        values = list(itertools.islice(replay_stream(path), 7))
        assert values == [1, 2, 3, 1, 2, 3, 1]

    def test_no_cycle_stops(self, tmp_path):
        path = write_text_trace(tmp_path, ["9", "8"])
        assert list(replay_stream(path, cycle=False)) == [9, 8]

    def test_trace_domain(self, tmp_path):
        path = write_text_trace(tmp_path, ["3", "17", "5"])
        assert trace_domain(path) == 17


class TestReplayWorkload:
    def test_end_to_end_run(self, tmp_path):
        from repro.config import (
            Algorithm,
            PolicyConfig,
            SystemConfig,
            WorkloadConfig,
            WorkloadKind,
        )
        from repro.core.system import run_experiment

        rng = np.random.default_rng(3)
        path = tmp_path / "keys.npy"
        np.save(path, rng.integers(1, 100, size=500))
        config = SystemConfig(
            num_nodes=3,
            window_size=48,
            policy=PolicyConfig(algorithm=Algorithm.BASE),
            workload=WorkloadConfig(
                kind=WorkloadKind.REPLAY,
                trace_path=str(path),
                total_tuples=500,
                domain=128,
                arrival_rate=200.0,
            ),
            seed=5,
        )
        result = run_experiment(config)
        assert result.tuples_arrived == 500
        assert result.truth_pairs > 0
        assert result.epsilon < 0.05

    def test_trace_outside_domain_rejected(self, tmp_path):
        from repro.config import (
            Algorithm,
            PolicyConfig,
            SystemConfig,
            WorkloadConfig,
            WorkloadKind,
        )
        from repro.core.system import DistributedJoinSystem

        path = tmp_path / "keys.txt"
        path.write_text("1\n5000\n")
        config = SystemConfig(
            num_nodes=2,
            window_size=16,
            policy=PolicyConfig(algorithm=Algorithm.BASE),
            workload=WorkloadConfig(
                kind=WorkloadKind.REPLAY,
                trace_path=str(path),
                total_tuples=10,
                domain=128,
            ),
        )
        system = DistributedJoinSystem(config)
        with pytest.raises(ConfigurationError):
            system.schedule_workload()

    def test_config_validation(self):
        from repro.config import WorkloadConfig, WorkloadKind

        with pytest.raises(ConfigurationError):
            WorkloadConfig(kind=WorkloadKind.REPLAY).validate()
        with pytest.raises(ConfigurationError):
            WorkloadConfig(trace_path="x.txt").validate()
