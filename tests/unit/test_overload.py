"""Unit tests for the overload-protection building blocks.

Settings validation, the degradation ladder's transition table and
residency bookkeeping, and the watermark/hysteresis detector -- all pure
and clock-free, exercised in isolation exactly as the node drives them.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.overload import (
    DegradationLadder,
    DegradationMode,
    OverloadDetector,
    OverloadSettings,
)
from repro.overload.ladder import _TRANSITIONS, TRIGGERS


def enabled_settings(**overrides):
    base = dict(
        enabled=True,
        queue_bound=64,
        throttle_watermark=16,
        throttle_clear=4,
        shed_watermark=48,
        shed_clear=24,
        min_dwell_s=0.25,
    )
    base.update(overrides)
    return OverloadSettings(**base)


class TestSettings:
    def test_defaults_are_disabled_and_valid(self):
        settings = OverloadSettings()
        assert not settings.enabled
        settings.validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"queue_bound": 0},
            {"throttle_clear": -1},
            {"throttle_clear": 16},  # no hysteresis gap
            {"shed_clear": 48},  # no hysteresis gap
            {"throttle_watermark": 50},  # above shed watermark
            {"shed_watermark": 80},  # above the queue bound
            {"min_dwell_s": -0.1},
            {"throttle_refresh_stretch": 0},
            {"link_backlog_bound_s": -1.0},
        ],
    )
    def test_validate_rejects_broken_ladders(self, overrides):
        with pytest.raises(ConfigurationError):
            enabled_settings(**overrides).validate()

    @pytest.mark.parametrize("bound", [1, 2, 3, 4, 8, 64, 1000])
    def test_for_queue_bound_is_valid_for_any_bound(self, bound):
        settings = OverloadSettings.for_queue_bound(bound)
        assert settings.enabled
        assert settings.queue_bound == bound
        assert settings.shed_watermark <= bound
        assert settings.throttle_clear < settings.throttle_watermark
        assert settings.shed_clear < settings.shed_watermark
        assert settings.throttle_watermark <= settings.shed_watermark

    def test_for_queue_bound_threads_link_bound(self):
        settings = OverloadSettings.for_queue_bound(16, link_backlog_bound_s=2.5)
        assert settings.link_backlog_bound_s == pytest.approx(2.5)


class TestLadder:
    def test_full_walk_up_and_down(self):
        ladder = DegradationLadder(node_id=2)
        assert ladder.mode is DegradationMode.NORMAL
        assert not ladder.is_degraded
        assert ladder.apply("throttle", 1.0) is DegradationMode.THROTTLED
        assert ladder.is_degraded and not ladder.is_shedding
        assert ladder.apply("shed", 2.0) is DegradationMode.SHEDDING
        assert ladder.is_shedding
        assert ladder.apply("relax", 5.0) is DegradationMode.THROTTLED
        assert ladder.apply("recover", 6.0) is DegradationMode.NORMAL
        assert not ladder.is_degraded
        assert [entry[1] for entry in ladder.history] == [
            "throttle",
            "shed",
            "relax",
            "recover",
        ]

    def test_every_trigger_is_legal_from_exactly_one_mode(self):
        for trigger in TRIGGERS:
            sources = [mode for (mode, t) in _TRANSITIONS if t == trigger]
            assert len(sources) == 1

    def test_out_of_order_triggers_raise(self):
        ladder = DegradationLadder(node_id=0)
        # NORMAL accepts only "throttle" -- the ladder never skips a rung.
        for trigger in ("shed", "relax", "recover"):
            assert not ladder.can_apply(trigger)
            with pytest.raises(SimulationError):
                ladder.apply(trigger, 1.0)
        ladder.apply("throttle", 1.0)
        with pytest.raises(SimulationError):
            ladder.apply("throttle", 2.0)

    def test_residency_accounts_open_interval_without_mutating(self):
        ladder = DegradationLadder(node_id=0)
        ladder.apply("throttle", 2.0)
        ladder.apply("shed", 5.0)
        first = ladder.residency_seconds(7.0)
        assert first["normal"] == pytest.approx(2.0)
        assert first["throttled"] == pytest.approx(3.0)
        assert first["shedding"] == pytest.approx(2.0)
        # A second call later must see the same closed intervals.
        second = ladder.residency_seconds(9.0)
        assert second["throttled"] == pytest.approx(3.0)
        assert second["shedding"] == pytest.approx(4.0)

    def test_counters_shape(self):
        ladder = DegradationLadder(node_id=0)
        ladder.apply("throttle", 1.0)
        counters = ladder.counters(3.0)
        assert counters == {
            "transitions": 1.0,
            "throttled_seconds": pytest.approx(2.0),
            "shedding_seconds": 0.0,
        }


class TestDetector:
    def make(self, **overrides):
        settings = enabled_settings(**overrides)
        ladder = DegradationLadder(node_id=1)
        return OverloadDetector(settings, ladder), ladder

    def test_steady_state_applies_nothing(self):
        detector, ladder = self.make()
        assert detector.observe(1.0, 0) == []
        assert detector.observe(2.0, 15) == []
        assert ladder.mode is DegradationMode.NORMAL

    def test_escalates_one_rung_at_throttle_watermark(self):
        detector, ladder = self.make()
        applied = detector.observe(1.0, 16)
        assert [trigger for trigger, _ in applied] == ["throttle"]
        assert ladder.mode is DegradationMode.THROTTLED

    def test_escalates_two_rungs_in_one_observation(self):
        detector, ladder = self.make()
        applied = detector.observe(1.0, 48)
        assert [trigger for trigger, _ in applied] == ["throttle", "shed"]
        assert ladder.mode is DegradationMode.SHEDDING

    def test_deescalation_waits_for_dwell(self):
        detector, ladder = self.make(min_dwell_s=1.0)
        detector.observe(1.0, 16)
        # Queue drained, but the dwell hasn't elapsed yet.
        assert detector.observe(1.5, 0) == []
        assert ladder.mode is DegradationMode.THROTTLED
        applied = detector.observe(2.5, 0)
        assert [trigger for trigger, _ in applied] == ["recover"]
        assert ladder.mode is DegradationMode.NORMAL

    def test_deescalation_waits_for_clear_watermark(self):
        detector, ladder = self.make(min_dwell_s=0.0)
        detector.observe(1.0, 16)
        # Below the entry watermark but above the clear: hold the mode.
        assert detector.observe(2.0, 5) == []
        assert ladder.mode is DegradationMode.THROTTLED
        applied = detector.observe(3.0, 4)
        assert [trigger for trigger, _ in applied] == ["recover"]

    def test_deescalates_at_most_one_rung_per_observation(self):
        detector, ladder = self.make(min_dwell_s=0.0)
        detector.observe(1.0, 48)
        assert ladder.mode is DegradationMode.SHEDDING
        applied = detector.observe(2.0, 0)
        assert [trigger for trigger, _ in applied] == ["relax"]
        assert ladder.mode is DegradationMode.THROTTLED
        applied = detector.observe(3.0, 0)
        assert [trigger for trigger, _ in applied] == ["recover"]
        assert ladder.mode is DegradationMode.NORMAL

    def test_dwell_resets_on_each_transition(self):
        detector, ladder = self.make(min_dwell_s=1.0)
        detector.observe(1.0, 48)
        # SHEDDING entered at t=1; relax is legal from t=2.
        assert detector.observe(2.0, 0) != []
        assert ladder.mode is DegradationMode.THROTTLED
        # THROTTLED entered at t=2; recover must wait until t=3.
        assert detector.observe(2.5, 0) == []
        assert detector.observe(3.0, 0) != []
        assert ladder.mode is DegradationMode.NORMAL

    def test_reescalation_is_immediate(self):
        detector, ladder = self.make(min_dwell_s=5.0)
        detector.observe(1.0, 16)
        # Escalation ignores dwell entirely -- only stepping down waits.
        applied = detector.observe(1.1, 48)
        assert [trigger for trigger, _ in applied] == ["shed"]
        assert ladder.mode is DegradationMode.SHEDDING


class TestSettingsImmutability:
    def test_settings_are_frozen(self):
        settings = OverloadSettings()
        with pytest.raises(dataclasses.FrozenInstanceError):
            settings.enabled = True
