"""Cross-validation of the three DFT evaluation paths.

The FFT wrapper, the direct O(W^2) evaluation, Goertzel's recurrence, and
the anchored sliding update are four independent implementations of the
same mathematics; agreement among all of them is the library's strongest
correctness evidence.  This module also guards the alignment contract
between the sliding DFT's slot buffer and the truncated-inverse
reconstruction, which DFTT's self-calibrated tolerance depends on.
"""

import numpy as np
import pytest

from repro.dft.control import ControlVector
from repro.dft.goertzel import goertzel_bins
from repro.dft.reconstruction import reconstruct_values
from repro.dft.sliding import SlidingDFT, low_frequency_bins
from repro.dft.transform import dft, dft_direct


def no_recompute():
    return ControlVector(recompute_interval=10**9, drift_bound=1.0)


def test_four_way_agreement():
    rng = np.random.default_rng(0)
    signal = rng.integers(0, 500, size=48).astype(float)
    bins = [0, 1, 5, 11, 23]

    via_fft = dft(signal)[bins]
    via_direct = dft_direct(signal)[bins]
    via_goertzel = goertzel_bins(signal, bins)
    sliding = SlidingDFT(48, tracked_bins=bins, control=no_recompute())
    sliding.extend(signal)  # exactly fills: slot order == chronological
    via_sliding = sliding.coefficients()

    assert np.allclose(via_fft, via_direct, atol=1e-7)
    assert np.allclose(via_fft, via_goertzel, atol=1e-6)
    assert np.allclose(via_fft, via_sliding, atol=1e-7)


def test_reconstruction_aligns_with_slot_buffer():
    """DFTT compares reconstruct_values(...) against buffer_values()
    position by position; after the window wraps, both must live in slot
    order for the comparison (and the tolerance) to be meaningful."""
    rng = np.random.default_rng(1)
    window = 32
    bins = low_frequency_bins(window, window // 2 + 1)  # full information
    sliding = SlidingDFT(window, tracked_bins=bins, control=no_recompute())
    sliding.extend(rng.integers(0, 100, size=81).astype(float))  # wraps twice

    reconstructed = reconstruct_values(
        sliding.coefficient_map(), window, round_to_int=False
    )
    assert np.allclose(reconstructed, sliding.buffer_values(), atol=1e-6)
    # Chronological order differs from slot order after wrapping...
    assert not np.array_equal(sliding.buffer_values(), sliding.window_values())
    # ...but holds the same multiset of values.
    assert sorted(sliding.buffer_values()) == sorted(sliding.window_values())


def test_truncated_reconstruction_still_tracks_buffer_loosely():
    """With a realistic budget, the reconstruction error DFTT measures on
    its own buffer is a meaningful (finite, signal-scaled) quantity."""
    rng = np.random.default_rng(2)
    window = 64
    budget = 8
    sliding = SlidingDFT(
        window, tracked_bins=low_frequency_bins(window, budget), control=no_recompute()
    )
    base = 1000 + np.cumsum(rng.normal(0, 1.0, size=200))
    sliding.extend(np.rint(base))
    estimate = reconstruct_values(sliding.coefficient_map(), window, round_to_int=False)
    errors = np.abs(estimate - sliding.buffer_values())
    assert np.isfinite(errors).all()
    assert errors.mean() < np.abs(sliding.buffer_values()).mean()
