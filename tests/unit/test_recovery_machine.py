"""Unit tests for the rejoin state machine (pure transition table)."""

import pytest

from repro.errors import SimulationError
from repro.recovery import RecoveryMachine, RecoveryPhase
from repro.recovery.machine import _TRANSITIONS, TRIGGERS


class TestTransitions:
    def test_happy_path_clean_rejoin(self):
        machine = RecoveryMachine(node_id=3)
        assert machine.phase is RecoveryPhase.LIVE
        assert machine.apply("crash", 1.0) is RecoveryPhase.DOWN
        assert machine.apply("restart", 2.0) is RecoveryPhase.RESTORING
        assert machine.apply("restored", 2.1) is RecoveryPhase.CATCHING_UP
        assert machine.apply("synced", 2.5) is RecoveryPhase.LIVE
        assert not machine.degraded
        assert machine.rejoin_latencies == [pytest.approx(0.5)]

    def test_timeout_rejoin_is_degraded(self):
        machine = RecoveryMachine(node_id=0)
        machine.apply("crash", 1.0)
        machine.apply("restart", 2.0)
        machine.apply("restored", 2.1)
        machine.apply("timeout", 4.0)
        assert machine.phase is RecoveryPhase.LIVE
        assert machine.degraded
        assert machine.rejoin_latencies == [pytest.approx(2.0)]

    def test_clean_rejoin_clears_degraded_flag(self):
        machine = RecoveryMachine(node_id=0)
        for trigger, time in [
            ("crash", 1.0),
            ("restart", 2.0),
            ("restored", 2.1),
            ("timeout", 4.0),
            ("crash", 5.0),
            ("restart", 6.0),
            ("restored", 6.1),
            ("synced", 6.2),
        ]:
            machine.apply(trigger, time)
        assert not machine.degraded
        assert len(machine.rejoin_latencies) == 2

    @pytest.mark.parametrize(
        "phase",
        [RecoveryPhase.LIVE, RecoveryPhase.RESTORING, RecoveryPhase.CATCHING_UP],
    )
    def test_crash_legal_from_every_up_phase(self, phase):
        machine = RecoveryMachine(node_id=0)
        machine.phase = phase
        assert machine.can_apply("crash")
        assert machine.apply("crash", 1.0) is RecoveryPhase.DOWN

    def test_mid_rejoin_crash_discards_pending_latency(self):
        machine = RecoveryMachine(node_id=0)
        machine.apply("crash", 1.0)
        machine.apply("restart", 2.0)
        machine.apply("crash", 2.05)  # dies again while restoring
        machine.apply("restart", 3.0)
        machine.apply("restored", 3.1)
        machine.apply("synced", 3.4)
        # Only the completed rejoin counts, measured from its own restart.
        assert machine.rejoin_latencies == [pytest.approx(0.4)]

    def test_invalid_triggers_raise_simulation_error(self):
        for phase in RecoveryPhase:
            for trigger in TRIGGERS:
                machine = RecoveryMachine(node_id=0)
                machine.phase = phase
                if (phase, trigger) in _TRANSITIONS:
                    continue
                assert not machine.can_apply(trigger)
                with pytest.raises(SimulationError):
                    machine.apply(trigger, 0.0)

    def test_unknown_trigger_rejected(self):
        with pytest.raises(SimulationError):
            RecoveryMachine(node_id=0).apply("reboot", 0.0)


class TestFlagsAndCounters:
    def test_is_live_and_is_serving(self):
        machine = RecoveryMachine(node_id=0)
        assert machine.is_live and machine.is_serving
        machine.apply("crash", 1.0)
        assert not machine.is_live and not machine.is_serving
        machine.apply("restart", 2.0)
        assert not machine.is_serving
        machine.apply("restored", 2.1)
        assert machine.is_serving and not machine.is_live
        machine.apply("synced", 2.2)
        assert machine.is_live and machine.is_serving

    def test_history_records_every_transition(self):
        machine = RecoveryMachine(node_id=0)
        machine.apply("crash", 1.0)
        machine.apply("restart", 2.0)
        assert machine.history == [
            (1.0, "crash", RecoveryPhase.DOWN),
            (2.0, "restart", RecoveryPhase.RESTORING),
        ]

    def test_counters(self):
        machine = RecoveryMachine(node_id=0)
        assert machine.counters() == {
            "transitions": 0.0,
            "rejoins_completed": 0.0,
        }
        machine.apply("crash", 1.0)
        machine.apply("restart", 2.0)
        machine.apply("restored", 2.1)
        machine.apply("synced", 2.3)
        counters = machine.counters()
        assert counters["transitions"] == 4.0
        assert counters["rejoins_completed"] == 1.0
        assert counters["rejoin_latency_mean_s"] == pytest.approx(0.3)
        assert counters["rejoin_latency_max_s"] == pytest.approx(0.3)
