"""Unit tests for the node runtime (small hand-built systems)."""

import math

import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.node import JoinProcessingNode
from repro.core.policies import PolicyContext, make_policy
from repro.join.ground_truth import GroundTruthOracle
from repro.metrics.accounting import ResultCollector, replay_accounting
from repro.net.link import LinkSpec
from repro.net.simulator import EventScheduler
from repro.net.topology import Network
from repro.streams.tuples import StreamId, StreamTuple

import numpy as np


def build_pair(algorithm=Algorithm.BASE, window=8, latency=0.0, recovery=None):
    """Two nodes wired through a latency-only network."""
    config = SystemConfig(
        num_nodes=2,
        window_size=window,
        policy=PolicyConfig(algorithm=algorithm, kappa=2.0),
        workload=WorkloadConfig(domain=64),
        link=LinkSpec(
            bandwidth_bps=math.inf, latency_min_s=latency, latency_max_s=latency
        ),
    )
    if recovery is not None:
        config = config.with_overrides(recovery=recovery)
    scheduler = EventScheduler()
    network = Network(scheduler, spec=config.link, rng=np.random.default_rng(0))
    oracle = GroundTruthOracle()
    collector = ResultCollector()
    nodes = []
    for node_id in (0, 1):
        context = PolicyContext(
            node_id=node_id,
            peer_ids=(1 - node_id,),
            window_size=window,
            domain=64,
            config=config.policy,
            rng=np.random.default_rng(node_id),
        )
        node = JoinProcessingNode(
            node_id=node_id,
            config=config,
            scheduler=scheduler,
            network=network,
            policy=make_policy(context, {}),
            oracle=oracle,
            collector=collector,
            recovery=recovery,
        )
        network.register(node_id, node)
        nodes.append(node)
    return scheduler, network, oracle, collector, nodes


def make_tuple(stream, key, origin, index=0):
    return StreamTuple(stream=stream, key=key, origin_node=origin, arrival_index=index)


def settle(nodes, oracle, collector):
    """Replay the nodes' deferred accounting (what the system does at collect)."""
    replay_accounting(
        [op for node in nodes for op in node.accounting_ops], [oracle], [collector]
    )


def test_local_join_produces_result():
    scheduler, _, oracle, collector, nodes = build_pair()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 5, 0))
    nodes[0].on_local_arrival(make_tuple(StreamId.S, 5, 0))
    scheduler.run()
    settle(nodes, oracle, collector)
    assert oracle.total_result_pairs == 1
    assert collector.reported_pairs == 1


def test_remote_join_via_forwarded_copy():
    scheduler, _, oracle, collector, nodes = build_pair()
    nodes[1].on_local_arrival(make_tuple(StreamId.S, 9, 1))
    scheduler.run()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 9, 0))
    scheduler.run()
    settle(nodes, oracle, collector)
    # BASE forwards the R tuple to node 1 where it meets the S tuple.
    assert oracle.total_result_pairs == 1
    assert collector.reported_pairs == 1


def test_shadow_window_catches_late_arrivals():
    scheduler, _, oracle, collector, nodes = build_pair()
    # R arrives first and is copied to node 1's shadow window.
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 3, 0))
    scheduler.run()
    # S then arrives at node 1: the local probe of the shadow finds the copy.
    nodes[1].on_local_arrival(make_tuple(StreamId.S, 3, 1))
    scheduler.run()
    settle(nodes, oracle, collector)
    assert collector.reported_pairs == 1


def test_service_time_includes_sender_pause():
    scheduler, network, _, _, nodes = build_pair()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 1, 0))
    scheduler.run()
    message_bytes = 24 + 8 + 40
    expected_pause = message_bytes * 8.0 / 90_000.0
    assert nodes[0].busy_seconds == pytest.approx(0.0002 + expected_pause)


def test_queue_serializes_processing():
    scheduler, _, _, _, nodes = build_pair()
    for index in range(5):
        nodes[0].on_local_arrival(make_tuple(StreamId.R, index + 1, 0, index))
    assert nodes[0].queue_depth >= 4  # only one started
    scheduler.run()
    assert nodes[0].tuples_processed == 5
    assert nodes[0].max_queue_depth >= 4


def test_crash_wipes_queue_depth_and_congestion_soft_state():
    from repro.recovery import RecoverySettings

    scheduler, _, _, _, nodes = build_pair(
        recovery=RecoverySettings(enabled=True)
    )
    node = nodes[0]
    for index in range(5):
        node.on_local_arrival(make_tuple(StreamId.R, index + 1, 0, index))
    assert node.max_queue_depth >= 4
    for runtime in node._queries.values():
        # Stand in for an adaptive-flow observation under backlog.
        runtime.policy.congestion_scale = 0.25
    node.on_crash()
    # The dead process's peak depth and throttle observations die with it.
    assert node.max_queue_depth == 0
    assert node.queue_depth == 0
    for runtime in node._queries.values():
        assert runtime.policy.congestion_scale == 1.0


def test_remote_tuples_counted():
    scheduler, _, _, _, nodes = build_pair()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 1, 0))
    scheduler.run()
    assert nodes[1].remote_tuples_processed == 1


def test_diagnostics_structure():
    scheduler, _, _, _, nodes = build_pair()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 1, 0))
    scheduler.run()
    diagnostics = nodes[0].diagnostics()
    for key in ("tuples_processed", "local_results", "max_queue_depth"):
        assert key in diagnostics


def test_summary_piggybacking_for_dft_policy():
    scheduler, network, _, _, nodes = build_pair(algorithm=Algorithm.DFT)
    for index in range(64):
        stream = StreamId.R if index % 2 == 0 else StreamId.S
        nodes[0].on_local_arrival(make_tuple(stream, (index % 8) + 1, 0, index))
    scheduler.run()
    assert network.stats.summary_entries > 0


def test_standalone_summary_flush():
    scheduler, network, _, _, nodes = build_pair(algorithm=Algorithm.DFT)
    # Node 1 receives local tuples but (probabilistically) may not forward
    # to node 0 for a while; the flush path guarantees summary delivery.
    for index in range(200):
        stream = StreamId.R if index % 2 == 0 else StreamId.S
        scheduler.schedule_at(
            index * 0.01,
            lambda s=stream, i=index: nodes[1].on_local_arrival(
                make_tuple(s, (i % 8) + 1, 1, i)
            ),
        )
    scheduler.run()
    summaries_known = nodes[0].policy.remote.get(1, StreamId.R)
    assert summaries_known is not None
