"""Unit tests for the ground-truth oracle."""

from repro.join.ground_truth import GroundTruthOracle
from repro.join.hash_join import JoinResult
from repro.streams.tuples import StreamId, StreamTuple


def make_tuple(stream, key, origin=0):
    return StreamTuple(stream=stream, key=key, origin_node=origin, arrival_index=0)


def test_empty_oracle():
    oracle = GroundTruthOracle()
    assert oracle.total_result_pairs == 0
    assert oracle.count_matches(make_tuple(StreamId.R, 1)) == 0


def test_pairs_counted_at_second_arrival():
    oracle = GroundTruthOracle()
    r = make_tuple(StreamId.R, 5)
    s = make_tuple(StreamId.S, 5)
    assert oracle.observe_arrival(r, []) == 0
    assert oracle.observe_arrival(s, []) == 1
    assert oracle.total_result_pairs == 1
    assert oracle.is_true_pair(r.tuple_id, s.tuple_id)
    assert not oracle.is_true_pair(s.tuple_id, r.tuple_id)  # ordered (r, s)


def test_multiplicity_counts_all_pairs():
    oracle = GroundTruthOracle()
    r_tuples = [make_tuple(StreamId.R, 9) for _ in range(3)]
    for r in r_tuples:
        oracle.observe_arrival(r, [])
    s = make_tuple(StreamId.S, 9)
    assert oracle.observe_arrival(s, []) == 3
    assert oracle.total_result_pairs == 3
    for r in r_tuples:
        assert oracle.is_true_pair(r.tuple_id, s.tuple_id)


def test_eviction_removes_future_pairs_only():
    oracle = GroundTruthOracle()
    r = make_tuple(StreamId.R, 4)
    oracle.observe_arrival(r, [])
    s1 = make_tuple(StreamId.S, 4)
    oracle.observe_arrival(s1, [])
    # r is evicted by a newer R arrival.
    newer = make_tuple(StreamId.R, 8)
    oracle.observe_arrival(newer, [r])
    s2 = make_tuple(StreamId.S, 4)
    assert oracle.observe_arrival(s2, []) == 0  # r gone
    assert oracle.is_true_pair(r.tuple_id, s1.tuple_id)  # the old pair remains
    assert not oracle.is_true_pair(r.tuple_id, s2.tuple_id)


def test_streams_do_not_join_themselves():
    oracle = GroundTruthOracle()
    oracle.observe_arrival(make_tuple(StreamId.R, 7), [])
    assert oracle.observe_arrival(make_tuple(StreamId.R, 7), []) == 0
    assert oracle.total_result_pairs == 0


def test_validate_wraps_pair_lookup():
    oracle = GroundTruthOracle()
    r = make_tuple(StreamId.R, 2)
    s = make_tuple(StreamId.S, 2)
    oracle.observe_arrival(r, [])
    oracle.observe_arrival(s, [])
    assert oracle.validate(JoinResult(r, s, produced_at_node=0))
    stranger = make_tuple(StreamId.S, 2)
    assert not oracle.validate(JoinResult(r, stranger, produced_at_node=0))


def test_per_node_contribution():
    oracle = GroundTruthOracle()
    oracle.observe_arrival(make_tuple(StreamId.R, 1, origin=0), [])
    oracle.observe_arrival(make_tuple(StreamId.S, 1, origin=2), [])
    oracle.observe_arrival(make_tuple(StreamId.S, 1, origin=2), [])
    assert oracle.per_node_contribution[2] == 2
    assert oracle.per_node_contribution[0] == 0


def test_population_tracking():
    oracle = GroundTruthOracle()
    r1 = make_tuple(StreamId.R, 1)
    r2 = make_tuple(StreamId.R, 1)
    oracle.observe_arrival(r1, [])
    oracle.observe_arrival(r2, [r1])
    assert oracle.window_population(StreamId.R) == 1
    assert oracle.global_count(StreamId.R, 1) == 1
    assert oracle.tuples_observed == 2
