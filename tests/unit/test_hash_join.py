"""Unit tests for the symmetric hash join."""

import pytest

from repro.errors import WindowError
from repro.join.hash_join import SymmetricHashJoin
from repro.streams.tuples import StreamId, StreamTuple
from repro.streams.window import CountWindow


def make_tuple(stream, key, origin=0, index=0):
    return StreamTuple(stream=stream, key=key, origin_node=origin, arrival_index=index)


def make_join(node_id=0, capacity=8):
    return SymmetricHashJoin(
        node_id, r_window=CountWindow(capacity), s_window=CountWindow(capacity)
    )


def test_probe_before_insert_semantics():
    join = make_join()
    r = make_tuple(StreamId.R, 5)
    results, _ = join.insert_local(r)
    assert results == []  # nothing in S yet
    s = make_tuple(StreamId.S, 5)
    results, _ = join.insert_local(s)
    assert len(results) == 1
    assert results[0].r_tuple is r
    assert results[0].s_tuple is s


def test_no_self_join_within_stream():
    join = make_join()
    join.insert_local(make_tuple(StreamId.R, 1))
    results, _ = join.insert_local(make_tuple(StreamId.R, 1))
    assert results == []


def test_each_pair_produced_once():
    join = make_join()
    pairs = set()
    for key in (1, 1, 2):
        results, _ = join.insert_local(make_tuple(StreamId.R, key))
        pairs.update(r.pair_id for r in results)
    for key in (1, 2, 1):
        results, _ = join.insert_local(make_tuple(StreamId.S, key))
        pairs.update(r.pair_id for r in results)
    # R has keys {1,1,2}; S has {1,2,1}: exact join size = 2*2 + 1 = 5.
    assert len(pairs) == 5


def test_result_orientation_always_r_then_s():
    join = make_join()
    join.insert_local(make_tuple(StreamId.S, 9))
    results, _ = join.insert_local(make_tuple(StreamId.R, 9))
    assert results[0].r_tuple.stream is StreamId.R
    assert results[0].s_tuple.stream is StreamId.S


def test_eviction_returned_and_excluded_from_matches():
    join = make_join(capacity=1)
    old = make_tuple(StreamId.S, 7)
    join.insert_local(old)
    _, evicted = join.insert_local(make_tuple(StreamId.S, 8))
    assert evicted == [old]
    results, _ = join.insert_local(make_tuple(StreamId.R, 7))
    assert results == []  # 7 was evicted


def test_probe_remote_does_not_insert():
    join = make_join()
    join.insert_local(make_tuple(StreamId.S, 4))
    remote = make_tuple(StreamId.R, 4, origin=1)
    results = join.probe_remote(remote)
    assert len(results) == 1
    # The remote copy is not in the R window: an S arrival finds nothing new.
    results, _ = join.insert_local(make_tuple(StreamId.S, 4))
    assert results == []


def test_probe_remote_rejects_own_tuples():
    join = make_join(node_id=3)
    with pytest.raises(WindowError):
        join.probe_remote(make_tuple(StreamId.R, 1, origin=3))


def test_match_count():
    join = make_join()
    for _ in range(3):
        join.insert_local(make_tuple(StreamId.S, 2))
    assert join.match_count(make_tuple(StreamId.R, 2)) == 3
    assert join.match_count(make_tuple(StreamId.R, 5)) == 0


def test_result_counters():
    join = make_join()
    join.insert_local(make_tuple(StreamId.S, 1))
    join.insert_local(make_tuple(StreamId.R, 1))
    join.probe_remote(make_tuple(StreamId.R, 1, origin=1))
    assert join.local_results == 1
    assert join.probe_results == 1
