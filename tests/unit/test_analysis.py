"""Unit tests for the post-run analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    byte_matrix,
    load_balance_report,
    message_matrix,
    similarity_matrix,
    top_talkers,
)
from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import DistributedJoinSystem
from repro.errors import ConfigurationError
from repro.net.link import LinkSpec
from repro.net.message import Message, MessageKind
from repro.net.simulator import EventScheduler
from repro.net.topology import Network
from repro.streams.tuples import StreamId


class Sink:
    def on_message(self, message):
        pass


def small_system(algorithm=Algorithm.DFTT):
    config = SystemConfig(
        num_nodes=3,
        window_size=64,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(total_tuples=900, domain=512, arrival_rate=150.0),
        seed=19,
    )
    system = DistributedJoinSystem(config)
    result = system.run()
    return system, result


class TestTrafficMatrix:
    def _network(self):
        scheduler = EventScheduler()
        network = Network(scheduler, spec=LinkSpec(), rng=np.random.default_rng(3))
        for node_id in (0, 1, 2):
            network.register(node_id, Sink())
        return network

    def test_matrices_reflect_sends(self):
        network = self._network()
        for _ in range(3):
            network.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
        network.send(Message(kind=MessageKind.TUPLE, source=2, destination=0))
        messages = message_matrix(network)
        assert messages[0, 1] == 3
        assert messages[2, 0] == 1
        assert messages[1, 2] == 0
        message_bytes = byte_matrix(network)
        assert message_bytes[0, 1] == 3 * 72

    def test_diagonal_is_zero(self):
        network = self._network()
        assert message_matrix(network).diagonal().sum() == 0

    def test_top_talkers_ordering(self):
        network = self._network()
        for _ in range(5):
            network.send(Message(kind=MessageKind.TUPLE, source=1, destination=2))
        network.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
        talkers = top_talkers(network, count=2)
        assert talkers[0][:2] == (1, 2)
        assert talkers[0][2] == 5
        with pytest.raises(ConfigurationError):
            top_talkers(network, count=0)

    def test_empty_network_rejected(self):
        scheduler = EventScheduler()
        network = Network(scheduler, rng=np.random.default_rng(4))
        with pytest.raises(ConfigurationError):
            message_matrix(network)


class TestLoadBalance:
    def test_report_fields(self):
        _, result = small_system()
        report = load_balance_report(result, metric="tuples_processed")
        assert set(report.per_node) == {0, 1, 2}
        assert report.minimum <= report.mean <= report.maximum
        assert 1 / 3 <= report.jain_index <= 1.0
        assert report.imbalance >= 1.0

    def test_unknown_metric_rejected(self):
        _, result = small_system()
        with pytest.raises(ConfigurationError):
            load_balance_report(result, metric="nonexistent")


class TestSimilarityMatrix:
    def test_dftt_matrix_shape_and_range(self):
        system, _ = small_system(Algorithm.DFTT)
        matrix = similarity_matrix(system, StreamId.R)
        assert matrix.shape == (3, 3)
        assert np.allclose(matrix.diagonal(), 1.0)
        off_diagonal = matrix[~np.eye(3, dtype=bool)]
        assert ((0.0 <= off_diagonal) & (off_diagonal <= 1.0)).all()

    def test_base_policy_rejected(self):
        system, _ = small_system(Algorithm.BASE)
        with pytest.raises(ConfigurationError):
            similarity_matrix(system)


class TestPinnedSeededRun:
    """Exact values from the seed-19 reference run.

    These pin the analysis helpers end-to-end: any change to the
    simulation order, the RNG stream, or the aggregation math shows up
    here as a concrete numeric diff rather than a vague shape failure.
    """

    @pytest.fixture(scope="class")
    def run(self):
        return small_system(Algorithm.DFTT)

    def test_traffic_matrices(self, run):
        system, _ = run
        expected_messages = np.array(
            [[0, 269, 307], [258, 0, 264], [331, 311, 0]]
        )
        assert (message_matrix(system.network) == expected_messages).all()
        expected_bytes = np.array(
            [[0, 21868, 24604], [20756, 0, 21188], [26972, 25532, 0]]
        )
        assert (byte_matrix(system.network) == expected_bytes).all()
        assert top_talkers(system.network, count=2) == [
            (2, 0, 331, 26972),
            (2, 1, 311, 25532),
        ]

    def test_load_balance(self, run):
        _, result = run
        report = load_balance_report(result, metric="tuples_processed")
        assert report.per_node == {0: 297.0, 1: 278.0, 2: 325.0}
        assert report.mean == pytest.approx(300.0)
        assert report.jain_index == pytest.approx(0.9958763342898664)
        assert report.imbalance == pytest.approx(325.0 / 300.0)
        busy = load_balance_report(result, metric="busy_seconds")
        assert busy.per_node[2] == pytest.approx(4.7605722222, rel=1e-9)
        assert busy.jain_index == pytest.approx(0.9917663427468089)

    def test_similarity_matrix(self, run):
        system, _ = run
        expected = np.array(
            [
                [1.0, 0.60704241, 0.49699954],
                [0.41155472, 1.0, 0.37680174],
                [0.47121297, 0.44654971, 1.0],
            ]
        )
        assert np.allclose(similarity_matrix(system, StreamId.R), expected)
