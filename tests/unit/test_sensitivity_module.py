"""Unit tests for the sensitivity experiment's structure (cheap paths)."""

from repro.experiments.sensitivity import (
    SensitivityRow,
    format_rows,
    sweep_alpha,
    sweep_skew,
)


def test_row_advantage():
    row = SensitivityRow(
        parameter="skew", value=0.5, epsilon_dftt=0.1, epsilon_round_robin=0.25
    )
    assert row.advantage == 0.15


def test_format_rows():
    rows = [
        SensitivityRow("skew", 0.0, 0.3, 0.31),
        SensitivityRow("skew", 0.9, 0.15, 0.3),
    ]
    text = format_rows(rows)
    assert "advantage" in text
    assert "0.9" in text


def test_single_point_sweeps_run():
    skew_rows = sweep_skew(skews=(0.5,), seed=77)
    assert len(skew_rows) == 1
    assert skew_rows[0].parameter == "skew"
    assert 0.0 <= skew_rows[0].epsilon_dftt <= 1.0
    alpha_rows = sweep_alpha(alphas=(0.4,), seed=77)
    assert len(alpha_rows) == 1
    assert alpha_rows[0].parameter == "alpha"
