"""Extra analysis coverage: similarity matrices from sketch policies."""

import numpy as np

from repro.analysis import similarity_matrix, top_talkers
from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import DistributedJoinSystem
from repro.streams.tuples import StreamId


def test_skch_policy_exposes_similarities():
    config = SystemConfig(
        num_nodes=3,
        window_size=64,
        policy=PolicyConfig(algorithm=Algorithm.SKCH, kappa=2.0),
        workload=WorkloadConfig(total_tuples=900, domain=512, arrival_rate=200.0),
        seed=71,
    )
    system = DistributedJoinSystem(config)
    system.run()
    matrix = similarity_matrix(system, StreamId.S)
    assert matrix.shape == (3, 3)
    off_diagonal = matrix[~np.eye(3, dtype=bool)]
    assert ((0.0 <= off_diagonal) & (off_diagonal <= 1.0)).all()


def test_top_talkers_cover_all_active_links_when_count_large():
    config = SystemConfig(
        num_nodes=3,
        window_size=64,
        policy=PolicyConfig(algorithm=Algorithm.BASE),
        workload=WorkloadConfig(total_tuples=600, domain=512, arrival_rate=200.0),
        seed=72,
    )
    system = DistributedJoinSystem(config)
    system.run()
    talkers = top_talkers(system.network, count=100)
    # Full mesh of 3 nodes: all 6 directed links carried traffic.
    assert len(talkers) == 6
    message_bytes = [row[3] for row in talkers]
    assert message_bytes == sorted(message_bytes, reverse=True)
