"""Unit tests for error, throughput, and result-collection metrics."""

import pytest

from repro.errors import ConfigurationError
from repro.join.hash_join import JoinResult
from repro.metrics.accounting import ResultCollector
from repro.metrics.error import epsilon_error
from repro.metrics.throughput import ThroughputSeries
from repro.streams.tuples import StreamId, StreamTuple


def make_result(r_key=1, s_key=1):
    r = StreamTuple(stream=StreamId.R, key=r_key, origin_node=0, arrival_index=0)
    s = StreamTuple(stream=StreamId.S, key=s_key, origin_node=1, arrival_index=0)
    return JoinResult(r, s, produced_at_node=0)


class TestEpsilonError:
    def test_equation_one(self):
        assert epsilon_error(100, 85) == pytest.approx(0.15)

    def test_no_truth_means_no_error(self):
        assert epsilon_error(0, 0) == 0.0

    def test_overreporting_clamped(self):
        assert epsilon_error(10, 15) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            epsilon_error(-1, 0)
        with pytest.raises(ConfigurationError):
            epsilon_error(1, -1)


class TestThroughputSeries:
    def test_bucketing_by_second(self):
        series = ThroughputSeries()
        series.record(0.2)
        series.record(0.9)
        series.record(1.5)
        assert series.series() == [(0, 2), (1, 1)]
        assert series.total == 3

    def test_mean_rate(self):
        series = ThroughputSeries()
        for t in (0.5, 1.5, 2.5, 3.5):
            series.record(t)
        assert series.mean_rate(4.0) == pytest.approx(1.0)
        assert series.mean_rate(0.0) == 0.0

    def test_peak_and_sustained(self):
        series = ThroughputSeries()
        for _ in range(10):
            series.record(0.5)
        series.record(1.5)
        assert series.peak_rate() == 10
        assert series.sustained_rate(0.5) == 10.0
        assert series.sustained_rate(1.0) == pytest.approx(5.5)

    def test_nonpositive_counts_ignored(self):
        series = ThroughputSeries()
        series.record(1.0, count=0)
        assert series.total == 0


class TestResultCollector:
    def test_deduplicates_pairs(self):
        collector = ResultCollector()
        result = make_result()
        assert collector.record(result, 0.0)
        assert not collector.record(result, 1.0)
        assert collector.reported_pairs == 1
        assert collector.duplicates == 1
        assert collector.raw_reports == 2

    def test_spurious_excluded(self):
        collector = ResultCollector()
        assert not collector.record(make_result(), 0.0, is_true=False)
        assert collector.reported_pairs == 0
        assert collector.spurious == 1

    def test_distinct_pairs_counted(self):
        collector = ResultCollector()
        collector.record(make_result(), 0.0)
        collector.record(make_result(), 0.0)  # different tuple ids
        assert collector.reported_pairs == 2

    def test_contains(self):
        collector = ResultCollector()
        result = make_result()
        collector.record(result, 0.0)
        assert collector.contains(result.r_tuple.tuple_id, result.s_tuple.tuple_id)
        assert not collector.contains(-1, -2)

    def test_throughput_recorded_for_new_pairs_only(self):
        collector = ResultCollector()
        result = make_result()
        collector.record(result, 0.5)
        collector.record(result, 0.6)
        assert collector.throughput.total == 1
