"""Unit tests for the epsilon-target calibration search."""

import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.flow import FlowSettings
from repro.experiments.calibrate import calibrate_budget
from repro.errors import CalibrationError


def factory(budget):
    return SystemConfig(
        num_nodes=4,
        window_size=96,
        policy=PolicyConfig(
            algorithm=Algorithm.ROUND_ROBIN,
            kappa=4.0,
            flow=FlowSettings(budget_override=budget),
        ),
        workload=WorkloadConfig(total_tuples=1200, domain=512, arrival_rate=150.0),
        seed=21,
    )


def test_calibration_converges_near_target():
    calibration = calibrate_budget(factory, target_epsilon=0.25, max_probes=6)
    assert calibration.probes <= 6
    assert abs(calibration.achieved_epsilon - 0.25) < 0.12
    assert 0.25 <= calibration.budget <= 3.0


def test_unreachable_target_returns_endpoint():
    # Target 0 is (practically) unreachable for a filtered policy.
    calibration = calibrate_budget(factory, target_epsilon=0.0, max_probes=3)
    assert calibration.budget == 3.0  # the high endpoint (N - 1)
    assert calibration.achieved_epsilon >= 0.0


def test_trivial_target_uses_low_endpoint():
    calibration = calibrate_budget(factory, target_epsilon=0.95, max_probes=3)
    assert calibration.budget == pytest.approx(0.25)


def test_invalid_inputs():
    with pytest.raises(CalibrationError):
        calibrate_budget(factory, target_epsilon=1.5)
    with pytest.raises(CalibrationError):
        calibrate_budget(factory, target_epsilon=0.15, max_probes=1)
    with pytest.raises(CalibrationError):
        calibrate_budget(factory, budget_range=(2.0, 1.0))


def test_within_tolerance_property():
    calibration = calibrate_budget(factory, target_epsilon=0.25, max_probes=7)
    assert calibration.target_epsilon == 0.25
    assert calibration.within_tolerance == (
        abs(calibration.achieved_epsilon - 0.25) <= 0.05
    )
