"""Unit tests for the message size model."""

from repro.net.message import (
    HEADER_BYTES,
    SUMMARY_COEFFICIENT_BYTES,
    TUPLE_KEY_BYTES,
    TUPLE_PAYLOAD_BYTES,
    Message,
    MessageKind,
)


def _msg(kind, entries=0):
    return Message(kind=kind, source=0, destination=1, summary_entries=entries)


def test_tuple_message_size():
    message = _msg(MessageKind.TUPLE)
    assert message.size_bytes() == HEADER_BYTES + TUPLE_KEY_BYTES + TUPLE_PAYLOAD_BYTES


def test_piggybacked_summary_adds_entry_bytes():
    bare = _msg(MessageKind.TUPLE)
    loaded = _msg(MessageKind.TUPLE, entries=3)
    assert loaded.size_bytes() == bare.size_bytes() + 3 * SUMMARY_COEFFICIENT_BYTES
    assert loaded.summary_bytes() == 3 * SUMMARY_COEFFICIENT_BYTES
    assert loaded.tuple_bytes() == bare.tuple_bytes()


def test_standalone_summary_has_no_tuple_body():
    message = _msg(MessageKind.SUMMARY, entries=5)
    assert message.tuple_bytes() == 0
    assert message.size_bytes() == HEADER_BYTES + 5 * SUMMARY_COEFFICIENT_BYTES


def test_result_message_carries_tuple_body():
    assert _msg(MessageKind.RESULT).tuple_bytes() == TUPLE_KEY_BYTES + TUPLE_PAYLOAD_BYTES


def test_control_message_is_small():
    assert _msg(MessageKind.CONTROL).size_bytes() == HEADER_BYTES + TUPLE_KEY_BYTES


def test_message_ids_are_unique():
    ids = {_msg(MessageKind.TUPLE).message_id for _ in range(100)}
    assert len(ids) == 100
