"""Unit tests for Theorems 1-3."""

import math

import pytest

from repro.core.bounds import (
    Budget,
    baseline_message_complexity,
    uniform_error_bound,
    uniform_message_complexity,
    zipf_error_bound,
)
from repro.errors import ConfigurationError


class TestUniformBounds:
    def test_theorem1_formula(self):
        assert uniform_error_bound(10, Budget.CONSTANT) == pytest.approx(1 - 2 / 10)
        assert uniform_error_bound(2, Budget.CONSTANT) == 0.0

    def test_theorem2_formula(self):
        n = 16
        expected = 1 - (1 + math.log2(n)) / n
        assert uniform_error_bound(n, Budget.LOGARITHMIC) == pytest.approx(expected)

    def test_theorems_agree_at_two_nodes(self):
        assert uniform_error_bound(2, Budget.CONSTANT) == pytest.approx(
            uniform_error_bound(2, Budget.LOGARITHMIC)
        )

    def test_log_budget_always_at_least_as_accurate(self):
        for n in range(2, 60):
            assert uniform_error_bound(n, Budget.LOGARITHMIC) <= uniform_error_bound(
                n, Budget.CONSTANT
            ) + 1e-12

    def test_error_grows_with_n(self):
        errors = [uniform_error_bound(n, Budget.LOGARITHMIC) for n in range(4, 50)]
        assert errors == sorted(errors)

    def test_message_complexity(self):
        assert uniform_message_complexity(20, Budget.CONSTANT) == 1.0
        assert uniform_message_complexity(16, Budget.LOGARITHMIC) == pytest.approx(4.0)
        assert uniform_message_complexity(2, Budget.LOGARITHMIC) == 1.0

    def test_baseline_complexity(self):
        assert baseline_message_complexity(20) == 19.0

    def test_three_fold_reduction_at_large_n(self):
        """Figure 3(b)'s observation: log N is a ~3x saving over N-1 at N=20... relative to itself times 3."""
        n = 20
        assert baseline_message_complexity(n) / uniform_message_complexity(
            n, Budget.LOGARITHMIC
        ) > 3.0

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            uniform_error_bound(1, Budget.CONSTANT)


class TestZipfBounds:
    def test_printed_formulas(self):
        alpha, n = 0.4, 10
        expected_o1 = 1 - (alpha + alpha**2) / n
        assert zipf_error_bound(n, alpha, Budget.CONSTANT) == pytest.approx(expected_o1)
        exponent = math.log2(n) + 1
        expected_olog = 1 - (alpha - alpha**exponent) / (1 - alpha)
        assert zipf_error_bound(n, alpha, Budget.LOGARITHMIC) == pytest.approx(
            expected_olog
        )

    def test_log_budget_plateaus_under_skew(self):
        """Figure 4's point: the O(log N) error stops growing with N."""
        errors = [zipf_error_bound(n, 0.4, Budget.LOGARITHMIC) for n in range(2, 21)]
        assert max(errors) - min(errors) < 0.35
        assert errors[-1] < uniform_error_bound(20, Budget.LOGARITHMIC)

    def test_clamped_into_unit_interval(self):
        for n in range(2, 21):
            for alpha in (0.1, 0.4, 0.9):
                for budget in Budget:
                    value = zipf_error_bound(n, alpha, budget)
                    assert 0.0 <= value <= 1.0

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_error_bound(5, 0.0, Budget.CONSTANT)
        with pytest.raises(ConfigurationError):
            zipf_error_bound(5, 1.0, Budget.CONSTANT)
