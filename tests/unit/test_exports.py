"""Public-API integrity: every advertised name resolves."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.net",
    "repro.streams",
    "repro.dft",
    "repro.sketches",
    "repro.bloom",
    "repro.join",
    "repro.core",
    "repro.core.policies",
    "repro.metrics",
    "repro.experiments",
    "repro.analysis",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name) is not None, "%s.%s" % (module_name, name)


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_lazy_core_attributes():
    core = importlib.import_module("repro.core")
    assert core.JoinProcessingNode.__name__ == "JoinProcessingNode"
    assert core.DistributedJoinSystem.__name__ == "DistributedJoinSystem"
    assert core.RunResult.__name__ == "RunResult"
    with pytest.raises(AttributeError):
        core.NotAThing


def test_star_import_is_clean():
    namespace = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate API check
    assert "run_experiment" in namespace
    assert "SystemConfig" in namespace
