"""Unit tests for per-query node internals."""

import math

import numpy as np
import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.node import JoinProcessingNode
from repro.core.policies import PolicyContext, make_policy
from repro.errors import ConfigurationError
from repro.join.ground_truth import GroundTruthOracle
from repro.metrics.accounting import ResultCollector, replay_accounting
from repro.net.link import LinkSpec
from repro.net.message import MessageKind
from repro.net.simulator import EventScheduler
from repro.net.topology import Network
from repro.streams.tuples import StreamId, StreamTuple


def build_two_node_two_query(algorithm=Algorithm.BASE):
    config = SystemConfig(
        num_nodes=2,
        window_size=8,
        num_queries=2,
        policy=PolicyConfig(algorithm=algorithm, kappa=2.0),
        workload=WorkloadConfig(domain=64),
        link=LinkSpec(bandwidth_bps=math.inf, latency_min_s=0.0, latency_max_s=0.0),
    )
    scheduler = EventScheduler()
    network = Network(scheduler, spec=config.link, rng=np.random.default_rng(0))
    oracles = [GroundTruthOracle() for _ in range(2)]
    collectors = [ResultCollector() for _ in range(2)]
    nodes = []
    for node_id in (0, 1):

        def policy_for(query):
            context = PolicyContext(
                node_id=node_id,
                peer_ids=(1 - node_id,),
                window_size=8,
                domain=64,
                config=config.policy,
                rng=np.random.default_rng(10 * node_id + query),
            )
            return make_policy(context, {})

        node = JoinProcessingNode(
            node_id=node_id,
            config=config,
            scheduler=scheduler,
            network=network,
            policy=policy_for(0),
            oracle=oracles[0],
            collector=collectors[0],
        )
        node.add_query(1, policy_for(1), oracles[1], collectors[1])
        network.register(node_id, node)
        nodes.append(node)
    return scheduler, network, oracles, collectors, nodes


def make_tuple(stream, key, origin, query):
    return StreamTuple(
        stream=stream, key=key, origin_node=origin, arrival_index=0, query_id=query
    )


def settle(nodes, oracles, collectors):
    """Replay the nodes' deferred accounting (what the system does at collect)."""
    replay_accounting(
        [op for node in nodes for op in node.accounting_ops], oracles, collectors
    )


def test_duplicate_query_id_rejected():
    scheduler, network, oracles, collectors, nodes = build_two_node_two_query()
    with pytest.raises(ConfigurationError):
        nodes[0].add_query(1, nodes[0].query(1).policy, oracles[1], collectors[1])


def test_queries_do_not_join_each_other():
    scheduler, _, oracles, collectors, nodes = build_two_node_two_query()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 5, 0, query=0))
    nodes[0].on_local_arrival(make_tuple(StreamId.S, 5, 0, query=1))
    scheduler.run()
    assert oracles[0].total_result_pairs == 0
    assert oracles[1].total_result_pairs == 0
    assert collectors[0].reported_pairs == 0
    assert collectors[1].reported_pairs == 0


def test_same_query_joins_normally():
    scheduler, _, oracles, collectors, nodes = build_two_node_two_query()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 5, 0, query=1))
    nodes[0].on_local_arrival(make_tuple(StreamId.S, 5, 0, query=1))
    scheduler.run()
    settle(nodes, oracles, collectors)
    assert oracles[1].total_result_pairs == 1
    assert collectors[1].reported_pairs == 1
    assert collectors[0].reported_pairs == 0


def test_forwarded_tuples_route_to_their_query():
    scheduler, _, oracles, collectors, nodes = build_two_node_two_query()
    nodes[1].on_local_arrival(make_tuple(StreamId.S, 9, 1, query=1))
    scheduler.run()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 9, 0, query=1))
    scheduler.run()
    settle(nodes, oracles, collectors)
    assert collectors[1].reported_pairs == 1
    # The copy landed in query 1's shadow windows at node 1, not query 0's.
    assert nodes[1].query(1).shadow_windows[StreamId.R]
    assert not nodes[1].query(0).shadow_windows[StreamId.R]


def test_result_messages_emitted_for_cross_node_pairs():
    scheduler, network, oracles, collectors, nodes = build_two_node_two_query()
    nodes[1].on_local_arrival(make_tuple(StreamId.S, 3, 1, query=0))
    scheduler.run()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 3, 0, query=0))
    scheduler.run()
    settle(nodes, oracles, collectors)
    assert collectors[0].reported_pairs == 1
    # Both nodes discover the pair (each holds the other's forwarded copy)
    # and each reports its own discovery: deduplication happens at the
    # query consumer (the collector), not by peeking at global state.
    assert network.stats.messages(MessageKind.RESULT) == 2
    assert collectors[0].duplicates == 1


def test_local_pairs_ship_no_result_message():
    scheduler, network, oracles, collectors, nodes = build_two_node_two_query()
    nodes[0].on_local_arrival(make_tuple(StreamId.R, 4, 0, query=0))
    nodes[0].on_local_arrival(make_tuple(StreamId.S, 4, 0, query=0))
    scheduler.run()
    settle(nodes, oracles, collectors)
    assert collectors[0].reported_pairs == 1
    assert network.stats.messages(MessageKind.RESULT) == 0


def test_summary_piggyback_carries_both_queries():
    scheduler, network, _, _, nodes = build_two_node_two_query(Algorithm.DFT)
    # Fill both queries' summaries past the refresh interval, then force a
    # tuple send: the message must carry updates tagged for both queries.
    for index in range(40):
        nodes[0].on_local_arrival(make_tuple(StreamId.R, (index % 8) + 1, 0, query=0))
        nodes[0].on_local_arrival(make_tuple(StreamId.R, (index % 8) + 1, 0, query=1))
    scheduler.run()
    remote0 = nodes[1].query(0).policy.remote.get(0, StreamId.R)
    remote1 = nodes[1].query(1).policy.remote.get(0, StreamId.R)
    assert remote0 is not None
    assert remote1 is not None
