"""Unit tests for summary dissemination machinery."""

import numpy as np
import pytest

from repro.core.summaries import (
    DftSummaryManager,
    RemoteSummaryTable,
    SnapshotSummaryManager,
    SummaryOutbox,
    SummaryUpdate,
)
from repro.errors import SummaryError
from repro.streams.tuples import StreamId


def make_update(version=1, stream=StreamId.R, algorithm="dft", payload=None, full=False):
    return SummaryUpdate(
        algorithm=algorithm,
        stream=stream,
        version=version,
        window_size=8,
        entries=len(payload) if isinstance(payload, dict) else 1,
        payload=payload if payload is not None else {0: 1 + 0j},
        full_state=full,
    )


class TestSummaryOutbox:
    def test_broadcast_queues_for_all_peers(self):
        outbox = SummaryOutbox([1, 2, 3])
        outbox.broadcast(make_update())
        for peer in (1, 2, 3):
            assert outbox.has_pending(peer)

    def test_take_clears_queue(self):
        outbox = SummaryOutbox([1, 2])
        outbox.broadcast(make_update())
        updates = outbox.take(1)
        assert len(updates) == 1
        assert not outbox.has_pending(1)
        assert outbox.has_pending(2)

    def test_newer_update_supersedes_queued(self):
        outbox = SummaryOutbox([1])
        outbox.broadcast(make_update(version=1))
        outbox.broadcast(make_update(version=2))
        updates = outbox.take(1)
        assert len(updates) == 1
        assert updates[0].version == 2

    def test_different_slots_coexist(self):
        outbox = SummaryOutbox([1])
        outbox.broadcast(make_update(stream=StreamId.R))
        outbox.broadcast(make_update(stream=StreamId.S))
        assert len(outbox.take(1)) == 2

    def test_pending_entries_sum(self):
        outbox = SummaryOutbox([1])
        outbox.broadcast(make_update(payload={0: 1j, 1: 2j}))
        outbox.broadcast(make_update(stream=StreamId.S, payload={0: 1j}))
        assert outbox.pending_entries(1) == 3

    def test_peers_with_pending(self):
        outbox = SummaryOutbox([1, 2])
        assert outbox.peers_with_pending() == []
        outbox.queue_for(2, make_update())
        assert outbox.peers_with_pending() == [2]


class TestRemoteSummaryTable:
    def test_apply_and_get(self):
        table = RemoteSummaryTable()
        assert table.apply(7, make_update(payload={0: 1j}))
        assert table.get(7, StreamId.R) == {0: 1j}
        assert table.get(7, StreamId.S) is None

    def test_stale_versions_dropped(self):
        table = RemoteSummaryTable()
        table.apply(7, make_update(version=5, payload={0: 5j}))
        assert not table.apply(7, make_update(version=4, payload={0: 4j}))
        assert table.get(7, StreamId.R) == {0: 5j}

    def test_delta_updates_merge(self):
        table = RemoteSummaryTable()
        table.apply(1, make_update(version=1, payload={0: 1j, 1: 2j}))
        table.apply(1, make_update(version=2, payload={1: 9j, 2: 3j}))
        assert table.get(1, StreamId.R) == {0: 1j, 1: 9j, 2: 3j}

    def test_snapshot_updates_replace(self):
        table = RemoteSummaryTable()
        table.apply(1, make_update(version=1, payload={0: 1j, 1: 2j}, full=True))
        table.apply(1, make_update(version=2, payload={5: 5j}, full=True))
        assert table.get(1, StreamId.R) == {5: 5j}

    def test_dirty_tracking(self):
        table = RemoteSummaryTable()
        table.apply(1, make_update(version=1))
        assert table.is_dirty(1, StreamId.R)
        table.clear_dirty(1, StreamId.R)
        assert not table.is_dirty(1, StreamId.R)
        table.apply(1, make_update(version=2))
        assert table.is_dirty(1, StreamId.R)

    def test_known_peers_by_stream(self):
        table = RemoteSummaryTable()
        table.apply(1, make_update(stream=StreamId.R))
        table.apply(2, make_update(stream=StreamId.S))
        assert table.known_peers(StreamId.R) == [1]
        assert table.known_peers(StreamId.S) == [2]


class TestDftSummaryManager:
    def _manager(self, budget=4, refresh=4, tolerance=0.05):
        outbox = SummaryOutbox([1, 2])
        manager = DftSummaryManager(
            stream=StreamId.R,
            window_size=16,
            budget=budget,
            refresh_interval=refresh,
            delta_tolerance=tolerance,
            outbox=outbox,
        )
        return manager, outbox

    def test_first_refresh_broadcasts_everything(self):
        manager, outbox = self._manager(refresh=4)
        for value in (5.0, 6.0, 7.0, 8.0):
            manager.observe(value)
        assert manager.broadcasts == 1
        updates = outbox.take(1)
        assert len(updates) == 1
        assert set(updates[0].payload) == {0, 1, 2, 3}

    def test_unchanged_coefficients_not_resent(self):
        manager, outbox = self._manager(refresh=2, tolerance=0.05)
        # Fill the window with a constant: after that, sliding in the same
        # value leaves the DC bin fixed and the other bins at ~zero.
        for _ in range(16):
            manager.observe(5.0)
        outbox.take(1)
        for _ in range(4):
            manager.observe(5.0)
        assert not outbox.has_pending(1)

    def test_versions_increase(self):
        manager, _ = self._manager(refresh=100, tolerance=0.0)
        manager.observe(1.0)
        first = manager.refresh()
        manager.observe(100.0)
        second = manager.refresh()
        assert first is not None and second is not None
        assert second.version > first.version

    def test_local_coefficients_match_sliding_dft(self):
        manager, _ = self._manager()
        for value in range(10):
            manager.observe(float(value))
        mapping = manager.local_coefficients()
        assert set(mapping) == set(int(b) for b in manager.dft.bins)

    def test_validation(self):
        outbox = SummaryOutbox([1])
        with pytest.raises(SummaryError):
            DftSummaryManager(StreamId.R, 16, 4, 0, 0.1, outbox)
        with pytest.raises(SummaryError):
            DftSummaryManager(StreamId.R, 16, 4, 1, -0.1, outbox)


class TestSnapshotSummaryManager:
    def test_tick_cadence(self):
        outbox = SummaryOutbox([1])
        state = {"value": 0}
        manager = SnapshotSummaryManager(
            algorithm="bloom",
            stream=StreamId.S,
            window_size=16,
            entries=3,
            refresh_interval=3,
            outbox=outbox,
            snapshot_fn=lambda: dict(state),
        )
        assert manager.tick() is None
        assert manager.tick() is None
        update = manager.tick()
        assert update is not None
        assert update.full_state
        assert update.entries == 3
        assert manager.broadcasts == 1

    def test_snapshot_captures_current_state(self):
        outbox = SummaryOutbox([1])
        state = {"value": 0}
        manager = SnapshotSummaryManager(
            "skch", StreamId.R, 16, 1, 1, outbox, lambda: dict(state)
        )
        state["value"] = 42
        update = manager.tick()
        assert update.payload == {"value": 42}
