"""Unit tests for latency tracking."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.latency import LatencyTracker


def test_empty_tracker():
    tracker = LatencyTracker()
    assert tracker.mean() == 0.0
    assert tracker.percentile(95) == 0.0
    assert tracker.maximum == 0.0


def test_validation():
    with pytest.raises(ConfigurationError):
        LatencyTracker(capacity=0)
    with pytest.raises(ConfigurationError):
        LatencyTracker().percentile(101)


def test_exact_aggregates():
    tracker = LatencyTracker()
    for value in (0.1, 0.2, 0.3):
        tracker.record(value)
    assert tracker.count == 3
    assert tracker.mean() == pytest.approx(0.2)
    assert tracker.maximum == pytest.approx(0.3)


def test_negative_clamped():
    tracker = LatencyTracker()
    tracker.record(-1e-12)
    assert tracker.mean() == 0.0


def test_percentiles_from_full_sample():
    tracker = LatencyTracker(capacity=1000)
    for value in range(100):
        tracker.record(value / 100.0)
    assert tracker.percentile(0) == 0.0
    assert tracker.percentile(50) == pytest.approx(0.5, abs=0.02)
    assert tracker.percentile(95) == pytest.approx(0.94, abs=0.03)
    assert tracker.percentile(100) == pytest.approx(0.99)


def test_bounded_memory_under_flood():
    tracker = LatencyTracker(capacity=64)
    for value in range(10_000):
        tracker.record(float(value % 10))
    assert len(tracker._samples) == 64
    assert tracker.count == 10_000
    assert tracker.mean() == pytest.approx(4.5, abs=0.01)
    assert 0.0 <= tracker.percentile(50) <= 9.0


def test_merge_combines_aggregates():
    left, right = LatencyTracker(), LatencyTracker()
    left.record(1.0)
    right.record(3.0)
    left.merge(right)
    assert left.count == 2
    assert left.mean() == pytest.approx(2.0)
    assert left.maximum == 3.0


def test_snapshot_keys():
    tracker = LatencyTracker()
    tracker.record(0.5)
    snapshot = tracker.snapshot()
    assert set(snapshot) == {"count", "mean", "p50", "p95", "max"}


def test_end_to_end_latency_is_plausible():
    """Full run: latencies are non-negative and bounded by the run length;
    remote discoveries put the p95 above the local-join floor."""
    from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
    from repro.core.system import run_experiment

    config = SystemConfig(
        num_nodes=4,
        window_size=96,
        policy=PolicyConfig(algorithm=Algorithm.BASE),
        workload=WorkloadConfig(total_tuples=1200, domain=512, arrival_rate=150.0),
        seed=41,
    )
    result = run_experiment(config)
    assert result.latency["count"] == result.reported_pairs
    assert 0.0 <= result.latency["mean"] <= result.duration_seconds
    # Most pairs surface instantly (the earlier member's copy was already
    # waiting in a shadow window), but the race cases pay a link latency.
    assert result.latency["max"] >= 0.02
    assert result.latency["max"] <= result.duration_seconds
