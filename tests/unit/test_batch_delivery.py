"""Unit tests for coalesced (same-timestamp) local arrival batches."""

import numpy as np

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import DistributedJoinSystem, run_experiment
from repro.profiling import KernelProfiler
from repro.streams.tuples import StreamId, StreamTuple


def small_config(algorithm=Algorithm.DFTT, **overrides):
    defaults = dict(
        num_nodes=3,
        window_size=64,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(total_tuples=600, domain=256, arrival_rate=200.0),
        seed=5,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def make_batch(node_id, keys, stream=StreamId.R, start_index=0):
    return tuple(
        StreamTuple(
            stream=stream,
            key=int(key),
            origin_node=node_id,
            arrival_index=start_index + offset,
        )
        for offset, key in enumerate(keys)
    )


def test_batch_arrivals_are_ingested_and_serviced():
    system = DistributedJoinSystem(small_config())
    node = system.nodes[0]
    batch = make_batch(0, [3, 7, 3, 11, 7])
    node.on_local_arrivals(batch)
    system.scheduler.run()
    assert node.tuples_processed == len(batch)
    assert node.policy.tuples_seen == len(batch)
    window = node.join.window(StreamId.R)
    assert sorted(t.key for t in window) == [3, 3, 7, 7, 11]
    system._replay_accounting()
    assert node.oracle.tuples_observed == len(batch)


def test_batch_service_time_is_per_tuple():
    config = small_config()
    system = DistributedJoinSystem(config)
    node = system.nodes[0]
    batch = make_batch(0, list(range(8)))
    node.on_local_arrivals(batch)
    system.scheduler.run()
    assert node.busy_seconds >= len(batch) * config.cpu_seconds_per_tuple


def test_empty_and_singleton_batches():
    system = DistributedJoinSystem(small_config())
    node = system.nodes[0]
    node.on_local_arrivals(())
    assert node.queue_depth == 0
    node.on_local_arrivals(make_batch(0, [9]))
    system.scheduler.run()
    assert node.tuples_processed == 1


def test_batch_matches_produce_results():
    """An R and an S tuple with the same key arriving together join."""
    system = DistributedJoinSystem(small_config(algorithm=Algorithm.BASE))
    node = system.nodes[0]
    r = make_batch(0, [42], stream=StreamId.R, start_index=0)
    s = make_batch(0, [42], stream=StreamId.S, start_index=1)
    node.on_local_arrivals(r + s)
    system.scheduler.run()
    system._replay_accounting()
    assert node.collector.reported_pairs == 1


def test_sketch_policy_batch_counters_match_scalar():
    """The batched SKCH ingest leaves the same sketch state as the
    scalar loop applied to the same arrivals."""
    batch_system = DistributedJoinSystem(small_config(algorithm=Algorithm.SKCH))
    scalar_system = DistributedJoinSystem(small_config(algorithm=Algorithm.SKCH))
    keys = [5, 9, 5, 130, 9, 9, 77]
    batch_node = batch_system.nodes[0]
    scalar_node = scalar_system.nodes[0]
    batch_node.on_local_arrivals(make_batch(0, keys))
    for item in make_batch(0, keys):
        scalar_node.on_local_arrival(item)
    batch_system.scheduler.run()
    scalar_system.scheduler.run()
    assert np.array_equal(
        batch_node.policy.sketches[StreamId.R].snapshot_counters(),
        scalar_node.policy.sketches[StreamId.R].snapshot_counters(),
    )


def test_profiled_run_populates_result_profile():
    profiler = KernelProfiler()
    result = run_experiment(small_config(), profiler=profiler)
    assert "system.run" in result.profile
    assert "node.local" in result.profile
    assert result.profile["node.local"]["items"] > 0
    # Unprofiled runs carry no accounting at all.
    assert run_experiment(small_config()).profile == {}
