"""Unit tests for forward/inverse DFTs."""

import numpy as np
import pytest

from repro.dft.transform import dft, dft_direct, inverse_dft
from repro.errors import SummaryError


def test_direct_matches_fft():
    rng = np.random.default_rng(0)
    signal = rng.normal(size=64)
    assert np.allclose(dft_direct(signal), dft(signal))


def test_direct_matches_fft_odd_length():
    rng = np.random.default_rng(1)
    signal = rng.normal(size=33)
    assert np.allclose(dft_direct(signal), dft(signal))


def test_round_trip():
    rng = np.random.default_rng(2)
    signal = rng.integers(0, 100, size=128).astype(float)
    recovered = inverse_dft(dft(signal))
    assert np.allclose(recovered.real, signal)
    assert np.allclose(recovered.imag, 0.0, atol=1e-9)


def test_dc_coefficient_is_sum():
    signal = np.array([1.0, 2.0, 3.0, 4.0])
    assert dft(signal)[0] == pytest.approx(10.0)


def test_constant_signal_has_only_dc():
    spectrum = dft(np.full(16, 5.0))
    assert spectrum[0] == pytest.approx(80.0)
    assert np.allclose(spectrum[1:], 0.0, atol=1e-9)


def test_pure_tone_lands_in_one_bin():
    w = 32
    n = np.arange(w)
    signal = np.cos(2 * np.pi * 3 * n / w)
    magnitude = np.abs(dft(signal))
    assert magnitude[3] == pytest.approx(w / 2)
    assert magnitude[w - 3] == pytest.approx(w / 2)
    others = np.delete(magnitude, [3, w - 3])
    assert np.abs(others).max() < 1e-9


def test_conjugate_symmetry_for_real_signals():
    rng = np.random.default_rng(3)
    signal = rng.normal(size=20)
    spectrum = dft(signal)
    for k in range(1, 10):
        assert spectrum[20 - k] == pytest.approx(np.conj(spectrum[k]))


def test_linearity():
    rng = np.random.default_rng(4)
    x, y = rng.normal(size=32), rng.normal(size=32)
    assert np.allclose(dft(2 * x + 3 * y), 2 * dft(x) + 3 * dft(y))


def test_parseval():
    rng = np.random.default_rng(5)
    signal = rng.normal(size=64)
    spectrum = dft(signal)
    assert np.sum(signal**2) == pytest.approx(np.sum(np.abs(spectrum) ** 2) / 64)


@pytest.mark.parametrize("bad", [[], [[1.0, 2.0]]])
def test_invalid_inputs_rejected(bad):
    with pytest.raises(SummaryError):
        dft(bad)
    with pytest.raises(SummaryError):
        dft_direct(bad)
    with pytest.raises(SummaryError):
        inverse_dft(np.asarray(bad, dtype=complex))
