"""Unit tests for the reliable control-plane transport (ARQ edge cases)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.net.reliable import ReliabilitySettings, ReliableTransport
from repro.net.simulator import EventScheduler


SETTINGS = ReliabilitySettings(enabled=True, retransmit_timeout_s=0.1, max_retries=5)


class LossyWire:
    """An injectable send_fn that drops the first ``drop_first`` sends."""

    def __init__(self, drop_first=0):
        self.sent = []
        self.drop_first = drop_first

    def __call__(self, message):
        self.sent.append(message)
        if len(self.sent) <= self.drop_first:
            return None  # dropped: never delivered
        return message


def make_transport(scheduler, wire, seed=0, settings=SETTINGS, node_id=0):
    return ReliableTransport(
        node_id=node_id,
        scheduler=scheduler,
        send_fn=wire,
        settings=settings,
        rng=np.random.default_rng(seed),
    )


def control(source=0, destination=1):
    return Message(
        kind=MessageKind.CONTROL, source=source, destination=destination,
        payload=(0, None, []),
    )


class TestSettings:
    def test_validation(self):
        for bad in (
            dict(retransmit_timeout_s=0.0),
            dict(backoff_factor=0.5),
            dict(jitter_fraction=-0.1),
            dict(max_retries=-1),
            dict(heartbeat_interval_s=0.0),
            dict(suspect_timeout_s=0.0),
            dict(staleness_budget_s=-1.0),
            dict(degradation_mode="panic"),
        ):
            with pytest.raises(ConfigurationError):
                ReliabilitySettings(**bad).validate()
        ReliabilitySettings().validate()


class TestRetransmission:
    def test_retransmits_until_a_copy_survives(self):
        scheduler = EventScheduler()
        wire = LossyWire(drop_first=3)
        sender = make_transport(scheduler, wire)
        sender.send(control())
        # Simulate: first 3 transmissions die, the 4th is delivered and acked.
        scheduler.run()  # drains all retransmit timers
        assert sender.retransmits >= 3
        survivors = wire.sent[3:]
        assert survivors, "a retransmission should eventually get through"
        assert all(m.seq == 0 for m in wire.sent)

    def test_ack_stops_retransmission(self):
        scheduler = EventScheduler()
        wire = LossyWire()
        sender = make_transport(scheduler, wire)
        message = control()
        sender.send(message)
        ack = Message(kind=MessageKind.ACK, source=1, destination=0, seq=message.seq)
        sender.on_ack(ack)
        scheduler.run()
        assert sender.retransmits == 0
        assert sender.unacked(1) == 0
        assert len(wire.sent) == 1

    def test_delivery_failure_after_max_retries(self):
        scheduler = EventScheduler()
        wire = LossyWire(drop_first=10**9)  # nothing ever arrives
        sender = make_transport(scheduler, wire)
        sender.send(control())
        scheduler.run()
        assert sender.retransmits == SETTINGS.max_retries
        assert sender.delivery_failures == 1
        assert len(wire.sent) == 1 + SETTINGS.max_retries

    def test_backoff_grows_the_gaps(self):
        scheduler = EventScheduler()
        times = []
        wire = LossyWire(drop_first=10**9)

        def recording_wire(message):
            times.append(scheduler.now)
            return wire(message)

        sender = make_transport(scheduler, recording_wire,
                                settings=ReliabilitySettings(
                                    enabled=True, retransmit_timeout_s=0.1,
                                    max_retries=3, jitter_fraction=0.0))
        sender.send(control())
        scheduler.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_is_deterministic_under_a_fixed_seed(self):
        def timeline(seed):
            scheduler = EventScheduler()
            times = []

            def wire(message):
                times.append(scheduler.now)

            sender = make_transport(scheduler, wire, seed=seed)
            sender.send(control())
            scheduler.run()
            return times

        assert timeline(42) == timeline(42)
        assert timeline(42) != timeline(43)  # the jitter does something


class TestReceiver:
    def test_ack_lost_then_duplicate_suppressed_but_reacked(self):
        scheduler = EventScheduler()
        wire = LossyWire()
        receiver = make_transport(scheduler, wire, node_id=1)
        message = control()
        message.seq = 0
        released = receiver.on_receive(message)
        assert released == [message]
        # The ack died; the sender retransmits the same sequence number.
        duplicate = control()
        duplicate.seq = 0
        assert receiver.on_receive(duplicate) == []
        assert receiver.duplicates_suppressed == 1
        # Every arrival is acked -- the retransmission's ack replaces the
        # lost one, or the sender would retry forever.
        acks = [m for m in wire.sent if m.kind is MessageKind.ACK]
        assert len(acks) == 2
        assert all(a.seq == 0 and a.destination == 0 for a in acks)

    def test_in_order_release_across_retransmits(self):
        scheduler = EventScheduler()
        receiver = make_transport(scheduler, LossyWire(), node_id=1)
        first, second, third = control(), control(), control()
        first.seq, second.seq, third.seq = 0, 1, 2
        # seq 0 is lost in transit; 1 and 2 arrive and must wait.
        assert receiver.on_receive(second) == []
        assert receiver.on_receive(third) == []
        assert receiver.out_of_order_buffered == 2
        # The retransmitted seq 0 releases the whole run, in order.
        released = receiver.on_receive(first)
        assert [m.seq for m in released] == [0, 1, 2]

    def test_rejects_unsequenced_messages(self):
        scheduler = EventScheduler()
        receiver = make_transport(scheduler, LossyWire(), node_id=1)
        with pytest.raises(ConfigurationError):
            receiver.on_receive(control())  # seq is None

    def test_counters_snapshot(self):
        scheduler = EventScheduler()
        transport = make_transport(scheduler, LossyWire())
        counters = transport.counters()
        assert set(counters) == {
            "retransmits",
            "acks_sent",
            "acks_received",
            "duplicates_suppressed",
            "delivery_failures",
            "out_of_order_buffered",
            "channel_resets",
        }
        assert all(value == 0.0 for value in counters.values())


class TestEndToEnd:
    def test_two_transports_over_a_perfect_wire(self):
        scheduler = EventScheduler()
        inboxes = {0: [], 1: []}

        def wire(message):
            # Deliver instantly to the destination transport.
            target = transports[message.destination]
            if message.kind is MessageKind.ACK:
                target.on_ack(message)
            else:
                inboxes[message.destination].extend(target.on_receive(message))

        transports = {
            node: make_transport(scheduler, wire, node_id=node) for node in (0, 1)
        }
        for _ in range(5):
            transports[0].send(control())
        scheduler.run()
        assert [m.seq for m in inboxes[1]] == [0, 1, 2, 3, 4]
        assert transports[0].retransmits == 0
        assert transports[0].acks_received == 5
        assert transports[1].acks_sent == 5
