"""Unit tests for 4-wise independent hashing."""

import numpy as np
import pytest

from repro.errors import SummaryError
from repro.sketches.hashing import MERSENNE_PRIME_31, FourWiseHashFamily


def test_rows_validated():
    with pytest.raises(SummaryError):
        FourWiseHashFamily(0)
    with pytest.raises(SummaryError):
        FourWiseHashFamily(4, prime=2)


def test_raw_values_in_field():
    family = FourWiseHashFamily(16, rng=np.random.default_rng(0))
    for key in (0, 1, 12345, MERSENNE_PRIME_31 - 1, MERSENNE_PRIME_31 + 5):
        raw = family.raw(key)
        assert raw.shape == (16,)
        assert (raw >= 0).all() and (raw < MERSENNE_PRIME_31).all()


def test_deterministic_per_key():
    family = FourWiseHashFamily(8, rng=np.random.default_rng(1))
    assert np.array_equal(family.raw(42), family.raw(42))
    assert np.array_equal(family.signs(42), family.signs(42))


def test_signs_are_plus_minus_one():
    family = FourWiseHashFamily(32, rng=np.random.default_rng(2))
    signs = family.signs(7)
    assert set(np.unique(signs)).issubset({-1, 1})


def test_signs_are_roughly_balanced():
    family = FourWiseHashFamily(64, rng=np.random.default_rng(3))
    total = sum(family.signs(key).sum() for key in range(200))
    # 12800 draws of +-1: the sum should be well inside 5 sigma.
    assert abs(total) < 5 * np.sqrt(200 * 64)


def test_pairwise_sign_products_are_unbiased():
    """4-wise independence implies E[xi(a) xi(b)] = 0 for a != b."""
    family = FourWiseHashFamily(256, rng=np.random.default_rng(4))
    a, b = family.signs(10).astype(int), family.signs(20).astype(int)
    assert abs(np.mean(a * b)) < 0.25


def test_buckets_in_range():
    family = FourWiseHashFamily(8, rng=np.random.default_rng(5))
    buckets = family.buckets(99, 10)
    assert (buckets >= 0).all() and (buckets < 10).all()
    with pytest.raises(SummaryError):
        family.buckets(99, 0)


def test_different_rows_disagree():
    family = FourWiseHashFamily(64, rng=np.random.default_rng(6))
    raw = family.raw(5)
    assert len(np.unique(raw)) > 32  # rows are independent polynomials
