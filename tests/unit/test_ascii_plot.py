"""Unit tests for the ASCII line and bar charts."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import bar_chart, line_chart


def test_single_series_renders():
    chart = line_chart({"DFTT": [(2, 0.1), (4, 0.2), (8, 0.4)]})
    assert "*" in chart
    assert "DFTT" in chart
    assert "0.4" in chart and "0.1" in chart  # y-axis labels


def test_multiple_series_use_distinct_glyphs():
    chart = line_chart(
        {"A": [(0, 0.0), (1, 1.0)], "B": [(0, 1.0), (1, 0.0)]}
    )
    assert "*" in chart and "o" in chart
    assert "A" in chart and "B" in chart


def test_extremes_map_to_canvas_corners():
    chart = line_chart({"S": [(0, 0.0), (10, 1.0)]}, width=20, height=5)
    lines = chart.splitlines()
    assert lines[0].endswith("*")  # max y at top-right
    assert lines[4].split("|")[1][0] == "*"  # min y at bottom-left


def test_constant_series_does_not_crash():
    chart = line_chart({"flat": [(0, 5.0), (1, 5.0)]})
    assert "flat" in chart


def test_y_label_in_legend():
    chart = line_chart({"S": [(0, 1.0)]}, y_label="epsilon")
    assert "[y: epsilon]" in chart


def test_validation():
    with pytest.raises(ConfigurationError):
        line_chart({})
    with pytest.raises(ConfigurationError):
        line_chart({"S": [(0, 1.0)]}, width=4)
    with pytest.raises(ConfigurationError):
        line_chart({str(i): [(0, i)] for i in range(20)})


def test_bar_chart_renders_grouped_bars():
    chart = bar_chart(["clean", "storm"], {"A": [0.0, 4.0], "B": [2.0, 1.0]})
    assert "*" in chart and "o" in chart
    assert "A" in chart and "B" in chart
    # Groups are indexed under the axis, spelled out on the mapping line.
    assert "x: 0=clean  1=storm" in chart


def test_bar_chart_heights_scale_with_values():
    chart = bar_chart(["lo", "hi"], {"S": [1.0, 10.0]}, height=10)
    columns = [line.split("|")[1] for line in chart.splitlines() if "|" in line]
    lo_height = sum(1 for row in columns if row[0] == "*")
    hi_height = sum(1 for row in columns if len(row) > 3 and row[3] == "*")
    assert hi_height == 10
    assert 1 <= lo_height <= 2


def test_bar_chart_small_nonzero_values_still_visible():
    chart = bar_chart(["a", "b"], {"S": [0.001, 100.0]})
    columns = [line.split("|")[1] for line in chart.splitlines() if "|" in line]
    assert any(row[0] == "*" for row in columns)  # tiny bar gets >= 1 cell


def test_bar_chart_zero_values_draw_nothing():
    chart = bar_chart(["a", "b"], {"S": [0.0, 5.0]})
    columns = [line.split("|")[1] for line in chart.splitlines() if "|" in line]
    assert all(row[0] == " " for row in columns)


def test_bar_chart_y_label_in_legend():
    chart = bar_chart(["a"], {"S": [1.0]}, y_label="kB lost")
    assert "[y: kB lost]" in chart


def test_bar_chart_all_zero_does_not_crash():
    chart = bar_chart(["a"], {"S": [0.0]})
    assert "S" in chart


def test_bar_chart_validation():
    with pytest.raises(ConfigurationError):
        bar_chart([], {"S": [1.0]})
    with pytest.raises(ConfigurationError):
        bar_chart(["a"], {})
    with pytest.raises(ConfigurationError):
        bar_chart(["a"], {"S": [1.0]}, height=3)
    with pytest.raises(ConfigurationError):
        bar_chart(["a", "b"], {"S": [1.0]})  # length mismatch
    with pytest.raises(ConfigurationError):
        bar_chart(["a"], {"S": [-1.0]})  # negative value
    with pytest.raises(ConfigurationError):
        bar_chart(["a"], {str(i): [1.0] for i in range(20)})  # too many series
