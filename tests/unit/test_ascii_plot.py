"""Unit tests for the ASCII line charts."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import line_chart


def test_single_series_renders():
    chart = line_chart({"DFTT": [(2, 0.1), (4, 0.2), (8, 0.4)]})
    assert "*" in chart
    assert "DFTT" in chart
    assert "0.4" in chart and "0.1" in chart  # y-axis labels


def test_multiple_series_use_distinct_glyphs():
    chart = line_chart(
        {"A": [(0, 0.0), (1, 1.0)], "B": [(0, 1.0), (1, 0.0)]}
    )
    assert "*" in chart and "o" in chart
    assert "A" in chart and "B" in chart


def test_extremes_map_to_canvas_corners():
    chart = line_chart({"S": [(0, 0.0), (10, 1.0)]}, width=20, height=5)
    lines = chart.splitlines()
    assert lines[0].endswith("*")  # max y at top-right
    assert lines[4].split("|")[1][0] == "*"  # min y at bottom-left


def test_constant_series_does_not_crash():
    chart = line_chart({"flat": [(0, 5.0), (1, 5.0)]})
    assert "flat" in chart


def test_y_label_in_legend():
    chart = line_chart({"S": [(0, 1.0)]}, y_label="epsilon")
    assert "[y: epsilon]" in chart


def test_validation():
    with pytest.raises(ConfigurationError):
        line_chart({})
    with pytest.raises(ConfigurationError):
        line_chart({"S": [(0, 1.0)]}, width=4)
    with pytest.raises(ConfigurationError):
        line_chart({str(i): [(0, i)] for i in range(20)})
