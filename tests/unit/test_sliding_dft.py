"""Unit tests for the incremental (sliding) DFT."""

import numpy as np
import pytest

from repro.dft.control import ControlVector
from repro.dft.sliding import SlidingDFT, low_frequency_bins
from repro.errors import SummaryError


def no_recompute(window):
    """A control vector that effectively never triggers recomputation."""
    return ControlVector(recompute_interval=10**9, drift_bound=1.0, unit_roundoff=1e-16)


class TestLowFrequencyBins:
    def test_returns_first_k(self):
        assert low_frequency_bins(16, 4).tolist() == [0, 1, 2, 3]

    def test_clamped_to_nonredundant_half(self):
        assert low_frequency_bins(8, 100).tolist() == [0, 1, 2, 3, 4]

    def test_invalid_inputs(self):
        with pytest.raises(SummaryError):
            low_frequency_bins(0, 1)
        with pytest.raises(SummaryError):
            low_frequency_bins(8, 0)


class TestSlidingDFT:
    def test_growing_window_matches_zero_padded_fft(self):
        sliding = SlidingDFT(8, control=no_recompute(8))
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        for value in values:
            sliding.update(value)
        padded = np.concatenate([values, np.zeros(3)])
        assert np.allclose(sliding.coefficients(), np.fft.fft(padded))

    def test_sliding_matches_buffer_fft(self):
        rng = np.random.default_rng(0)
        sliding = SlidingDFT(16, control=no_recompute(16))
        stream = rng.integers(0, 50, size=100).astype(float)
        for value in stream:
            sliding.update(value)
        expected = np.fft.fft(sliding.buffer_values())
        assert np.allclose(sliding.coefficients(), expected, atol=1e-9)

    def test_magnitudes_match_chronological_window_fft(self):
        """Slot anchoring is a pure phase shift of the chronological DFT."""
        rng = np.random.default_rng(0)
        sliding = SlidingDFT(16, control=no_recompute(16))
        stream = rng.integers(0, 50, size=100).astype(float)
        for value in stream:
            sliding.update(value)
        chronological = np.fft.fft(stream[-16:])
        assert np.allclose(
            np.abs(sliding.coefficients()), np.abs(chronological), atol=1e-9
        )

    def test_tracked_subset_matches_full_bins(self):
        rng = np.random.default_rng(1)
        bins = [0, 2, 5]
        sliding = SlidingDFT(16, tracked_bins=bins, control=no_recompute(16))
        stream = rng.normal(size=60)
        for value in stream:
            sliding.update(value)
        expected = np.fft.fft(sliding.buffer_values())[bins]
        assert np.allclose(sliding.coefficients(), expected, atol=1e-9)

    def test_bins_deduplicated_and_sorted(self):
        sliding = SlidingDFT(8, tracked_bins=[5, 1, 1, 3])
        assert sliding.bins.tolist() == [1, 3, 5]

    def test_invalid_bins_rejected(self):
        with pytest.raises(SummaryError):
            SlidingDFT(8, tracked_bins=[8])
        with pytest.raises(SummaryError):
            SlidingDFT(8, tracked_bins=[-1])
        with pytest.raises(SummaryError):
            SlidingDFT(8, tracked_bins=[])
        with pytest.raises(SummaryError):
            SlidingDFT(0)

    def test_drift_is_tiny_without_recompute(self):
        rng = np.random.default_rng(2)
        sliding = SlidingDFT(32, control=no_recompute(32))
        sliding.extend(rng.integers(0, 1000, size=5000).astype(float))
        assert sliding.drift() < 1e-6

    def test_recompute_resets_drift_counter(self):
        sliding = SlidingDFT(8, control=ControlVector(recompute_interval=10))
        sliding.extend(range(25))
        assert sliding.full_recomputes >= 2
        assert sliding.updates_since_recompute < 10

    def test_control_vector_cadence(self):
        sliding = SlidingDFT(8, control=ControlVector(recompute_interval=5))
        sliding.extend(range(5))
        assert sliding.full_recomputes == 1
        sliding.extend(range(4))
        assert sliding.full_recomputes == 1
        sliding.update(1.0)
        assert sliding.full_recomputes == 2

    def test_coefficient_map_alignment(self):
        sliding = SlidingDFT(8, tracked_bins=[0, 3])
        sliding.extend([1.0, 2.0])
        mapping = sliding.coefficient_map()
        assert set(mapping) == {0, 3}
        coefficients = sliding.coefficients()
        assert mapping[0] == coefficients[0]
        assert mapping[3] == coefficients[1]

    def test_window_values_chronological_order(self):
        sliding = SlidingDFT(3)
        sliding.extend([1.0, 2.0, 3.0, 4.0])
        assert sliding.window_values().tolist() == [2.0, 3.0, 4.0]
        # Slot order differs: 4.0 overwrote slot 0.
        assert sliding.buffer_values().tolist() == [4.0, 2.0, 3.0]

    def test_buffer_values_while_growing(self):
        sliding = SlidingDFT(4)
        sliding.extend([1.0, 2.0])
        assert sliding.buffer_values().tolist() == [1.0, 2.0]
        assert sliding.window_values().tolist() == [1.0, 2.0]

    def test_is_full_and_len(self):
        sliding = SlidingDFT(4)
        assert not sliding.is_full
        sliding.extend([1, 2, 3, 4])
        assert sliding.is_full and len(sliding) == 4
        sliding.update(5)
        assert len(sliding) == 4

    def test_dc_bin_tracks_window_sum(self):
        sliding = SlidingDFT(4, tracked_bins=[0], control=no_recompute(4))
        sliding.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert sliding.coefficients()[0].real == pytest.approx(2 + 3 + 4 + 5)
