"""Unit tests for the counting Bloom filter."""

import numpy as np
import pytest

from repro.bloom.counting import CountingBloomFilter
from repro.errors import SummaryError


def _filter(counters=1024, hashes=4, max_count=15, seed=0):
    return CountingBloomFilter(
        counters, hashes, max_count=max_count, rng=np.random.default_rng(seed)
    )


def test_validation():
    with pytest.raises(SummaryError):
        CountingBloomFilter(0, 1)
    with pytest.raises(SummaryError):
        CountingBloomFilter(8, 0)
    with pytest.raises(SummaryError):
        CountingBloomFilter(8, 1, max_count=0)


def test_membership_after_add():
    bloom = _filter()
    bloom.update(range(50))
    assert all(key in bloom for key in range(50))


def test_remove_restores_absence():
    bloom = _filter()
    bloom.add(7)
    assert 7 in bloom
    bloom.remove(7)
    assert 7 not in bloom
    assert bloom.items == 0


def test_sliding_window_cycle_never_false_negative():
    bloom = _filter(counters=2048)
    window = []
    for key in range(500):
        bloom.add(key)
        window.append(key)
        if len(window) > 64:
            bloom.remove(window.pop(0))
        assert all(k in bloom for k in window)


def test_remove_unknown_key_raises():
    bloom = _filter()
    bloom.add(3)
    with pytest.raises(SummaryError):
        bloom.remove(9999)


def test_count_estimate_upper_bounds_multiplicity():
    bloom = _filter()
    for _ in range(5):
        bloom.add(42)
    assert bloom.count_estimate(42) >= 5
    bloom.remove(42)
    assert bloom.count_estimate(42) >= 4


def test_saturated_counters_are_sticky():
    bloom = _filter(counters=64, hashes=2, max_count=3)
    for _ in range(10):
        bloom.add(1)  # saturates key 1's cells at 3
    assert bloom.saturations > 0
    for _ in range(10):
        bloom.remove(1)  # skipped decrements, no underflow
    assert 1 in bloom  # sticky saturation: permanent false positive


def test_snapshot_round_trip():
    bloom = _filter()
    bloom.update(range(20))
    snapshot = bloom.snapshot()
    clone = bloom.spawn_compatible()
    clone.load_snapshot(snapshot)
    assert all(key in clone for key in range(20))
    # Snapshot is a copy: mutating the original does not leak.
    bloom.add(999)
    assert 999 not in clone or bloom.count_estimate(999) >= 1


def test_load_snapshot_shape_mismatch():
    bloom = _filter(counters=64)
    with pytest.raises(SummaryError):
        bloom.load_snapshot(np.zeros(32, dtype=np.int32))


def test_fill_ratio_and_fp_rate():
    bloom = _filter(counters=256, hashes=4)
    assert bloom.fill_ratio() == 0.0
    bloom.update(range(100))
    assert 0.0 < bloom.fill_ratio() <= 1.0
    assert 0.0 < bloom.false_positive_rate() <= 1.0


def test_serialized_entries():
    assert _filter(counters=80).serialized_entries() == 2
    assert _filter(counters=1).serialized_entries() == 1
