"""Unit tests for the standard Bloom filter."""

import numpy as np
import pytest

from repro.bloom.standard import BloomFilter, optimal_num_hashes
from repro.errors import SummaryError


def _filter(bits=1024, hashes=4, seed=0):
    return BloomFilter(bits, hashes, rng=np.random.default_rng(seed))


def test_validation():
    with pytest.raises(SummaryError):
        BloomFilter(0, 1)
    with pytest.raises(SummaryError):
        BloomFilter(8, 0)
    with pytest.raises(SummaryError):
        optimal_num_hashes(0, 10)


def test_optimal_num_hashes():
    assert optimal_num_hashes(1000, 100) == 7  # (m/n) ln 2 = 6.93
    assert optimal_num_hashes(10, 1000) == 1


def test_no_false_negatives():
    bloom = _filter()
    keys = list(range(100))
    bloom.update(keys)
    assert all(key in bloom for key in keys)


def test_false_positive_rate_is_reasonable():
    bloom = _filter(bits=2048, hashes=5)
    bloom.update(range(200))
    false_positives = sum(1 for key in range(10_000, 12_000) if key in bloom)
    assert false_positives / 2000 < 0.15


def test_empty_filter_rejects_everything():
    bloom = _filter()
    assert 5 not in bloom
    assert bloom.fill_ratio() == 0.0


def test_fill_ratio_and_fp_estimate_monotone():
    bloom = _filter()
    bloom.update(range(50))
    early_fill = bloom.fill_ratio()
    early_fp = bloom.false_positive_rate()
    bloom.update(range(50, 500))
    assert bloom.fill_ratio() > early_fill
    assert bloom.false_positive_rate() > early_fp


def test_spawn_compatible_shares_hashes():
    bloom = _filter()
    bloom.add(7)
    other = bloom.spawn_compatible()
    assert 7 not in other  # empty
    other.add(7)
    assert 7 in other
    # Same hash functions: identical bit patterns for the same key.
    assert np.array_equal(bloom._bits, other._bits)


def test_serialized_entries():
    bloom = _filter(bits=1600)
    assert bloom.serialized_entries() == 10  # 1600 bits / 160 bits-per-entry
    assert _filter(bits=10).serialized_entries() == 1
