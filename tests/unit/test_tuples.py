"""Unit tests for the stream tuple model."""

from repro.streams.tuples import StreamId, StreamTuple


def test_stream_other_is_involutive():
    assert StreamId.R.other is StreamId.S
    assert StreamId.S.other is StreamId.R
    assert StreamId.R.other.other is StreamId.R


def test_tuple_ids_are_unique():
    tuples = [
        StreamTuple(stream=StreamId.R, key=1, origin_node=0, arrival_index=i)
        for i in range(50)
    ]
    assert len({t.tuple_id for t in tuples}) == 50


def test_with_timestamp_preserves_identity():
    original = StreamTuple(stream=StreamId.S, key=9, origin_node=2, arrival_index=7)
    stamped = original.with_timestamp(3.5)
    assert stamped.tuple_id == original.tuple_id
    assert stamped.timestamp == 3.5
    assert stamped.key == 9
    assert stamped.stream is StreamId.S
    assert original.timestamp is None  # frozen original untouched
