"""Unit tests for RunResult derived metrics."""

import pytest

from repro.core.results import RunResult


def make_result(**overrides):
    defaults = dict(
        config={"algorithm": "DFTT"},
        truth_pairs=1000,
        reported_pairs=850,
        duplicate_reports=10,
        spurious_reports=5,
        tuples_arrived=5000,
        duration_seconds=20.0,
        arrival_span_seconds=18.0,
        traffic={"summary_overhead_fraction": 0.02},
        messages_by_kind={"tuple": 9000, "summary": 1000, "control": 3},
    )
    defaults.update(overrides)
    return RunResult(**defaults)


def test_epsilon():
    assert make_result().epsilon == pytest.approx(0.15)


def test_data_messages_excludes_control():
    assert make_result().data_messages == 10_000


def test_messages_per_result_tuple():
    assert make_result().messages_per_result_tuple == pytest.approx(10_000 / 850)


def test_messages_per_result_with_no_results():
    result = make_result(reported_pairs=0)
    assert result.messages_per_result_tuple == float("inf")


def test_messages_per_arrival():
    assert make_result().messages_per_arrival == pytest.approx(2.0)
    assert make_result(tuples_arrived=0).messages_per_arrival == 0.0


def test_throughput():
    assert make_result().throughput == pytest.approx(42.5)
    assert make_result(duration_seconds=0.0).throughput == 0.0


def test_summary_overhead_fraction():
    assert make_result().summary_overhead_fraction == pytest.approx(0.02)
    assert make_result(traffic={}).summary_overhead_fraction == 0.0


def test_summary_dictionary():
    summary = make_result().summary()
    assert summary["epsilon"] == pytest.approx(0.15)
    assert summary["reported_pairs"] == 850.0
    assert "messages_per_result_tuple" in summary
    assert "throughput" in summary
